"""Tests for the batch ingestion pipeline (repro.pipeline).

Covers the chunking helpers, the sink implementations, the
:class:`BatchIngestor` driver, the ε-guarantee invariant of ingested output
(property-style, on random-walk and SST-like data, explicitly including
chunk-boundary points), and the wiring into the streams and queries layers.
"""

import numpy as np
import pytest

from repro.approximation.reconstruct import reconstruct
from repro.core.errors import FilterStateError, StreamOrderError
from repro.core.types import Recording, RecordingKind
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.pipeline import (
    BatchIngestor,
    CallbackSink,
    ListSink,
    NullSink,
    StoreSink,
    iter_chunks,
    normalize_chunk,
)
from repro.queries import stored_range_aggregate
from repro.storage.segment_store import SegmentStore
from repro.streams.pipeline import MonitoringPipeline

from conftest import assert_within_bound


# --------------------------------------------------------------------------- #
# Chunking
# --------------------------------------------------------------------------- #
class TestChunking:
    def test_iter_chunks_covers_everything_in_order(self):
        times = np.arange(10.0)
        values = np.arange(10.0) * 2.0
        chunks = list(iter_chunks(times, values, 3))
        assert [len(t) for t, _ in chunks] == [3, 3, 3, 1]
        assert np.array_equal(np.concatenate([t for t, _ in chunks]), times)
        assert np.array_equal(np.vstack([v for _, v in chunks])[:, 0], values)

    def test_iter_chunks_yields_views(self):
        times = np.arange(8.0)
        values = np.arange(8.0)
        (chunk_times, _), *_ = iter_chunks(times, values, 4)
        assert chunk_times.base is times

    def test_invalid_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks(np.arange(4.0), np.arange(4.0), 0))

    def test_normalize_chunk_promotes_1d_values(self):
        times, values = normalize_chunk([0.0, 1.0], [5.0, 6.0])
        assert values.shape == (2, 1)

    def test_normalize_chunk_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            normalize_chunk([0.0, 1.0], [5.0])


# --------------------------------------------------------------------------- #
# Sinks
# --------------------------------------------------------------------------- #
def _recordings(count):
    return [
        Recording(float(i), np.array([float(i)]), RecordingKind.SEGMENT_START)
        for i in range(count)
    ]


class TestSinks:
    def test_list_sink_collects(self):
        sink = ListSink()
        sink.write(_recordings(3))
        sink.write(_recordings(2))
        assert len(sink.recordings) == 5

    def test_null_sink_counts(self):
        sink = NullSink()
        sink.write(_recordings(4))
        sink.write([])
        assert sink.count == 4

    def test_callback_sink_skips_empty_batches(self):
        calls = []
        sink = CallbackSink(calls.append)
        sink.write([])
        sink.write(_recordings(2))
        assert len(calls) == 1 and len(calls[0]) == 2

    def test_store_sink_appends_to_store(self, tmp_path):
        sink = StoreSink(tmp_path / "archive", "demo", epsilon=[0.5])
        sink.write(_recordings(3))
        store = SegmentStore(tmp_path / "archive")
        entry = store.describe("demo")
        assert entry.recordings == 3
        assert entry.epsilon == [0.5]


# --------------------------------------------------------------------------- #
# BatchIngestor
# --------------------------------------------------------------------------- #
class TestBatchIngestor:
    def test_run_reports_points_and_chunks(self, noisy_walk):
        times, values = noisy_walk
        ingestor = BatchIngestor("swing", 1.0, chunk_size=256)
        report = ingestor.run(times, values)
        assert report.points == len(times)
        assert report.chunks == int(np.ceil(len(times) / 256))
        assert report.recordings == len(ingestor.sink.recordings)
        assert report.compression_ratio == report.points / report.recordings
        assert report.filter_name == "swing"

    def test_requires_epsilon_for_named_filters(self):
        with pytest.raises(ValueError):
            BatchIngestor("swing")

    def test_rejects_ingest_after_close(self):
        ingestor = BatchIngestor("swing", 1.0)
        ingestor.run(np.arange(4.0), np.zeros(4))
        with pytest.raises(RuntimeError):
            ingestor.ingest_chunk(np.array([10.0]), np.array([0.0]))

    def test_filter_order_violations_propagate(self):
        ingestor = BatchIngestor("swing", 1.0)
        with pytest.raises(StreamOrderError):
            ingestor.ingest(np.array([0.0, 0.0]), np.zeros(2))

    def test_finished_filter_rejects_batches(self):
        ingestor = BatchIngestor("swing", 1.0)
        ingestor.run(np.arange(4.0), np.zeros(4))
        with pytest.raises(FilterStateError):
            ingestor.filter.process_batch(np.array([9.0]), np.array([0.0]))

    def test_ingest_stream_of_chunk_pairs(self, noisy_walk):
        times, values = noisy_walk
        ingestor = BatchIngestor("slide", 1.0)
        ingestor.ingest_stream(iter_chunks(times, values, 500))
        report = ingestor.close()
        assert report.points == len(times)
        assert report.chunks == 3

    def test_empty_run(self):
        report = BatchIngestor("swing", 1.0).run(np.array([]), np.array([]))
        assert report.points == 0
        assert report.recordings == 0
        assert report.compression_ratio == 0.0

    def test_recordings_do_not_alias_caller_buffers(self):
        """Reusing the input buffer between chunks must not corrupt output."""
        buffer_times = np.array([0.0, 1.0, 2.0])
        buffer_values = np.array([10.0, 10.0, 10.0])
        ingestor = BatchIngestor("swing", 0.1)
        ingestor.ingest_chunk(buffer_times, buffer_values)
        buffer_times += 3.0
        buffer_values[:] = 99.0
        ingestor.ingest_chunk(buffer_times, buffer_values)
        ingestor.close()
        first = ingestor.sink.recordings[0]
        assert first.time == 0.0
        assert float(first.value[0]) == 10.0

    def test_report_counts_only_points_seen_by_this_ingestor(self):
        """A pre-used filter's earlier points are not attributed to the report."""
        from repro.core.swing import SwingFilter

        stream_filter = SwingFilter(1.0)
        for t in range(100):
            stream_filter.feed(float(t), 0.0)
        ingestor = BatchIngestor(stream_filter)
        report = ingestor.run(np.arange(100.0, 150.0), np.zeros(50))
        assert report.points == 50
        assert stream_filter.points_processed == 150


# --------------------------------------------------------------------------- #
# ε-guarantee invariant of ingested output
# --------------------------------------------------------------------------- #
class TestEpsilonGuarantee:
    """Every reconstructed value stays within εᵢ of the input, including the
    points that straddle chunk boundaries."""

    @pytest.mark.parametrize("name", ["swing", "slide"])
    @pytest.mark.parametrize("epsilon", [0.1, 0.5, 2.0])
    def test_random_walk_bound(self, name, epsilon, noisy_walk):
        times, values = noisy_walk
        ingestor = BatchIngestor(name, epsilon, chunk_size=128)
        ingestor.run(times, values)
        assert_within_bound(ingestor.sink.recordings, times, values, epsilon)

    @pytest.mark.parametrize("name", ["swing", "slide"])
    def test_sst_bound(self, name, sst_signal):
        times, values = sst_signal
        epsilon = 0.05
        ingestor = BatchIngestor(name, epsilon, chunk_size=200)
        ingestor.run(times, values)
        assert_within_bound(ingestor.sink.recordings, times, values, epsilon)

    @pytest.mark.parametrize("name", ["swing", "slide"])
    @pytest.mark.parametrize("chunk_size", [1, 7, 64])
    def test_chunk_boundary_points(self, name, chunk_size):
        """The bound holds exactly at the first/last point of every chunk."""
        rng = np.random.default_rng(31)
        times = np.arange(400.0)
        values = np.cumsum(rng.normal(0.0, 0.8, 400))
        epsilon = 0.6
        ingestor = BatchIngestor(name, epsilon, chunk_size=chunk_size)
        ingestor.run(times, values)
        approximation = reconstruct(ingestor.sink.recordings)
        boundaries = sorted(
            {0, len(times) - 1}
            | set(range(0, len(times), chunk_size))
            | set(range(chunk_size - 1, len(times), chunk_size))
        )
        for index in boundaries:
            deviation = abs(float(approximation.value_at(times[index])[0]) - values[index])
            assert deviation <= epsilon + 1e-8

    @pytest.mark.parametrize("name", ["swing", "slide"])
    def test_multidimensional_vector_epsilon(self, name):
        rng = np.random.default_rng(37)
        times = np.arange(500.0)
        values = np.cumsum(rng.normal(0.0, [0.2, 1.0], (500, 2)), axis=0)
        epsilon = [0.3, 1.4]
        ingestor = BatchIngestor(name, epsilon, chunk_size=64)
        ingestor.run(times, values)
        assert_within_bound(ingestor.sink.recordings, times, values, epsilon)


# --------------------------------------------------------------------------- #
# Wiring into storage, queries and streams
# --------------------------------------------------------------------------- #
class TestEndToEnd:
    def test_ingest_into_store_and_query(self, tmp_path, smooth_walk):
        times, values = smooth_walk
        epsilon = 0.5
        sink = StoreSink(tmp_path / "archive", "walk", epsilon=[epsilon])
        BatchIngestor("slide", epsilon, chunk_size=300, sink=sink).run(times, values)
        store = SegmentStore(tmp_path / "archive")
        aggregate = stored_range_aggregate(store, "walk", float(times[0]), float(times[-1]))
        # Every original point is within ε of the approximation, so the
        # aggregate extremes can deviate by at most ε (§ queries docstring).
        assert aggregate.minimum >= values.min() - epsilon - 1e-8
        assert aggregate.maximum <= values.max() + epsilon + 1e-8

    def test_stored_query_inside_one_segment(self, tmp_path):
        """A range strictly inside one long segment must still reconstruct
        (the store keeps the covering recording before the range)."""
        times = np.arange(100.0)
        values = 0.5 * times
        sink = StoreSink(tmp_path / "archive", "ramp", epsilon=[0.25])
        BatchIngestor("swing", 0.25, sink=sink).run(times, values)
        store = SegmentStore(tmp_path / "archive")
        aggregate = stored_range_aggregate(store, "ramp", 40.0, 45.0)
        assert aggregate.mean == pytest.approx(0.5 * 42.5, abs=0.3)

    def test_cli_ingest_bad_chunk_size_leaves_no_store(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="chunk_size"):
            main(
                ["ingest", "--dataset", "sine", "--filter", "swing", "--epsilon",
                 "0.5", "--store", str(tmp_path / "archive"), "--chunk-size", "0"]
            )
        assert not (tmp_path / "archive").exists()

    def test_cli_ingest_reports_stream_errors_cleanly(self, tmp_path):
        """Order violations surface as a clean SystemExit, and a bad filter
        name does not create the store directory as a side effect."""
        import csv

        from repro.cli import main

        csv_path = tmp_path / "bad.csv"
        with open(csv_path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["t", "x"])
            writer.writerows([[0.0, 1.0], [1.0, 1.0], [1.0, 2.0]])
        store = tmp_path / "store"
        with pytest.raises(SystemExit, match="ingest failed"):
            main(
                ["ingest", "--input", str(csv_path), "--filter", "swing",
                 "--epsilon", "0.5", "--store", str(store)]
            )
        with pytest.raises(SystemExit, match="unknown filter"):
            main(
                ["ingest", "--input", str(csv_path), "--filter", "nosuch",
                 "--epsilon", "0.5", "--store", str(tmp_path / "other")]
            )
        assert not (tmp_path / "other").exists()

    def test_monitoring_pipeline_run_arrays_matches_run(self, noisy_walk):
        times, values = noisy_walk
        per_point = MonitoringPipeline("swing", epsilon=1.0).run(zip(times, values))
        batched = MonitoringPipeline("swing", epsilon=1.0).run_arrays(
            times, values, chunk_size=256
        )
        assert batched.points == per_point.points
        assert batched.recordings == per_point.recordings
        assert batched.messages_sent == per_point.messages_sent
        assert batched.bytes_sent == per_point.bytes_sent
        assert batched.max_absolute_error == pytest.approx(per_point.max_absolute_error)


class TestStoreSinkSharded:
    def test_store_sink_creates_sharded_store(self, tmp_path):
        from repro.storage import ShardedStore, open_store

        sink = StoreSink(tmp_path / "archive", "demo", epsilon=[0.5], shards=4)
        assert isinstance(sink.store, ShardedStore)
        sink.write(_recordings(3))
        sink.close()
        store = open_store(tmp_path / "archive")
        assert store.shard_count == 4
        assert store.describe("demo").recordings == 3

    def test_store_sink_rejects_shards_with_store_instance(self, tmp_path):
        import pytest as _pytest

        store = SegmentStore(tmp_path / "archive")
        with _pytest.raises(ValueError, match="path"):
            StoreSink(store, "demo", shards=2)

    def test_store_sink_accepts_sharded_store_instance(self, tmp_path):
        from repro.storage import ShardedStore

        store = ShardedStore(tmp_path / "archive", 2, autoflush=False)
        sink = StoreSink(store, "demo", epsilon=[0.5])
        sink.write(_recordings(4))
        sink.close()  # flushes the deferred catalogs
        reopened = ShardedStore(tmp_path / "archive")
        assert reopened.describe("demo").recordings == 4


# --------------------------------------------------------------------------- #
# StoreSink buffered archiving
# --------------------------------------------------------------------------- #
def _recordings_at(start, count):
    return [
        Recording(float(start + i), np.array([float(start + i)]), RecordingKind.HOLD)
        for i in range(count)
    ]


class TestStoreSinkBuffering:
    def test_write_through_by_default(self, tmp_path):
        sink = StoreSink(tmp_path / "archive", "s")
        sink.write(_recordings_at(0, 2))
        assert sink.store.describe("s").recordings == 2
        assert sink.pending == ()

    def test_buffers_until_archive_batch(self, tmp_path):
        sink = StoreSink(tmp_path / "archive", "s", archive_batch=5)
        sink.write(_recordings_at(0, 3))
        assert "s" not in sink.store
        assert len(sink.pending) == 3
        sink.write(_recordings_at(3, 3))  # crosses the threshold
        assert sink.store.describe("s").recordings == 6
        assert sink.pending == ()

    def test_flush_before_close_is_idempotent(self, tmp_path):
        sink = StoreSink(tmp_path / "archive", "s", archive_batch=100)
        sink.write(_recordings_at(0, 4))
        sink.flush()
        assert sink.store.describe("s").recordings == 4
        sink.flush()
        sink.close()
        sink.close()
        assert sink.store.describe("s").recordings == 4

    def test_buffered_equals_write_through(self, tmp_path):
        buffered = StoreSink(tmp_path / "a", "s", archive_batch=7)
        direct = StoreSink(tmp_path / "b", "s")
        for start in range(0, 30, 3):
            chunk = _recordings_at(start, 3)
            buffered.write(chunk)
            direct.write(chunk)
        buffered.close()
        direct.close()
        left = SegmentStore(tmp_path / "a").read("s")
        right = SegmentStore(tmp_path / "b").read("s")
        assert [(r.time, r.kind) for r in left] == [(r.time, r.kind) for r in right]

    def test_invalid_archive_batch(self, tmp_path):
        with pytest.raises(ValueError, match="archive_batch"):
            StoreSink(tmp_path / "archive", "s", archive_batch=0)

    def test_failed_append_after_persist_does_not_double_archive(self, tmp_path):
        store = SegmentStore(tmp_path / "archive", autoflush=False)
        sink = StoreSink(store, "s", archive_batch=100)
        sink.write(_recordings_at(0, 3))
        sink.flush()  # registers the stream and archives the first batch
        sink.write(_recordings_at(3, 3))
        original_flush = store.flush
        state = {"fail": True}

        def flaky_flush():
            if state["fail"]:
                state["fail"] = False
                raise OSError("disk full")
            original_flush()

        store.flush = flaky_flush
        with pytest.raises(OSError, match="disk full"):
            sink.flush()  # append landed; catalog flush failed
        store.flush = original_flush
        sink.close()  # must not re-append the already-persisted batch
        assert store.describe("s").recordings == 6
        assert [r.time for r in store.read("s")] == [float(i) for i in range(6)]
