"""Tests for the linear filters (connected and disconnected)."""

import numpy as np
import pytest

from repro.approximation.reconstruct import reconstruct, segments_from_recordings
from repro.core.linear import DisconnectedLinearFilter, LinearFilter
from repro.data.patterns import ramp_signal, sawtooth_signal

from conftest import assert_within_bound


class TestConnectedLinear:
    def test_ramp_needs_two_recordings(self):
        times, values = ramp_signal(length=100, slope=0.5)
        result = LinearFilter(0.01).process(zip(times, values))
        assert result.recording_count == 2

    def test_slope_fixed_by_first_two_points(self):
        # The third point is within epsilon of the line through the first two,
        # the fourth is not.
        stream = [(0.0, 0.0), (1.0, 1.0), (2.0, 2.3), (3.0, 4.0)]
        result = LinearFilter(0.5).process(stream)
        assert result.recording_count == 3  # start, violation end, final end

    def test_segments_are_connected(self, noisy_walk):
        times, values = noisy_walk
        result = LinearFilter(1.0).process(zip(times, values))
        segments = segments_from_recordings(result)
        assert all(segment.connected_to_previous for segment in segments[1:])

    def test_error_bound_on_random_walk(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 0.8
        result = LinearFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_error_bound_on_sawtooth(self):
        times, values = sawtooth_signal(length=500, amplitude=5.0, period=50.0)
        epsilon = 0.3
        result = LinearFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_single_point_stream(self):
        result = LinearFilter(0.5).process([(0.0, 1.0)])
        assert result.recording_count == 1
        approx = reconstruct(result)
        assert approx.value_at(0.0)[0] == pytest.approx(1.0)

    def test_two_point_stream(self):
        result = LinearFilter(0.5).process([(0.0, 1.0), (1.0, 2.0)])
        assert result.recording_count == 2
        approx = reconstruct(result)
        assert approx.value_at(1.0)[0] == pytest.approx(2.0)

    def test_multidimensional_error_bound(self):
        rng = np.random.default_rng(0)
        times = np.arange(300.0)
        values = np.cumsum(rng.normal(0, 0.5, (300, 3)), axis=0)
        epsilon = 0.6
        result = LinearFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_max_lag_limits_interval_length(self):
        times, values = ramp_signal(length=100, slope=1.0)
        bounded = LinearFilter(0.5, max_lag=10).process(zip(times, values))
        unbounded = LinearFilter(0.5).process(zip(times, values))
        assert bounded.recording_count > unbounded.recording_count
        # With a lag bound of 10 points, gaps between recordings stay small.
        gaps = np.diff([r.time for r in bounded.recordings])
        assert np.max(gaps) <= 10.0


class TestDisconnectedLinear:
    def test_ramp_needs_two_recordings(self):
        times, values = ramp_signal(length=100, slope=-0.25)
        result = DisconnectedLinearFilter(0.01).process(zip(times, values))
        assert result.recording_count == 2

    def test_two_recordings_per_segment(self, noisy_walk):
        times, values = noisy_walk
        result = DisconnectedLinearFilter(1.0).process(zip(times, values))
        segments = segments_from_recordings(result)
        assert not any(segment.connected_to_previous for segment in segments)
        positive = [s for s in segments if s.duration > 0.0]
        degenerate = [s for s in segments if s.duration == 0.0]
        assert result.recording_count == 2 * len(positive) + len(degenerate)

    def test_error_bound(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 0.7
        result = DisconnectedLinearFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_new_segment_starts_at_violating_point(self):
        stream = [(0.0, 0.0), (1.0, 0.0), (2.0, 5.0), (3.0, 10.0)]
        result = DisconnectedLinearFilter(0.5).process(stream)
        start_times = [r.time for r in result.recordings if r.kind.value == "segment_start"]
        assert 2.0 in start_times

    def test_trailing_single_point_interval(self):
        # The last point violates and the stream ends immediately: it becomes
        # a degenerate (zero-length) segment.
        stream = [(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (3.0, 50.0)]
        epsilon = 0.5
        result = DisconnectedLinearFilter(epsilon).process(stream)
        assert_within_bound(result, [t for t, _ in stream], [v for _, v in stream], epsilon)


class TestComparative:
    def test_connected_uses_fewer_recordings_than_disconnected(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 1.0
        connected = LinearFilter(epsilon).process(zip(times, values))
        disconnected = DisconnectedLinearFilter(epsilon).process(zip(times, values))
        assert connected.recording_count <= disconnected.recording_count
