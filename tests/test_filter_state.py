"""Snapshot/restore round-trips for every registered filter.

The contract under test: splitting a stream at an arbitrary point,
snapshotting the filter, pickling the snapshot, restoring it into a fresh
instance and feeding the remainder must yield recordings *bit-identical* to
an uninterrupted run — regardless of the filter, the split point, whether
the points flow through ``feed`` or ``process_batch``, and whether a
``max_lag`` bound is active.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import FilterState, SlideFilter, SwingFilter
from repro.core.errors import FilterStateError
from repro.core.registry import FILTER_REGISTRY, create_filter, restore_filter

ALL_FILTERS = sorted(FILTER_REGISTRY)


def make_stream(seed: int, length: int = 1200, dimensions: int = 1):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(0.5, 1.5, length))
    if dimensions == 1:
        values = np.cumsum(rng.normal(0.0, 1.0, length))
    else:
        values = np.cumsum(rng.normal(0.0, 1.0, (length, dimensions)), axis=0)
    return times, values


def recording_tuples(stream_filter):
    return [
        (record.time, tuple(float(v) for v in record.value), record.kind)
        for record in stream_filter.recordings
    ]


def run_uninterrupted(name, epsilon, times, values, **kwargs):
    full = create_filter(name, epsilon, **kwargs)
    for t, v in zip(times, values):
        full.feed(t, v)
    full.finish()
    return recording_tuples(full)


def run_split(name, epsilon, times, values, split, batch=False, **kwargs):
    """Feed ``[:split]``, snapshot → pickle → restore, feed the rest."""
    first = create_filter(name, epsilon, **kwargs)
    if batch and split > 0:
        first.process_batch(times[:split], values[:split])
    else:
        for t, v in zip(times[:split], values[:split]):
            first.feed(t, v)
    state = pickle.loads(pickle.dumps(first.snapshot()))
    second = restore_filter(state)
    if batch and split < len(times):
        second.process_batch(times[split:], values[split:])
    else:
        for t, v in zip(times[split:], values[split:]):
            second.feed(t, v)
    second.finish()
    return recording_tuples(first) + recording_tuples(second)


class TestSnapshotRoundTrip:
    @pytest.mark.parametrize("name", ALL_FILTERS)
    @pytest.mark.parametrize("split", [0, 1, 2, 37, 599, 1199, 1200])
    def test_split_is_bit_identical(self, name, split):
        times, values = make_stream(seed=11)
        reference = run_uninterrupted(name, 0.4, times, values)
        resumed = run_split(name, 0.4, times, values, split)
        assert resumed == reference

    @pytest.mark.parametrize("name", ALL_FILTERS)
    @pytest.mark.parametrize("split", [0, 450, 1200])
    def test_split_through_batch_path(self, name, split):
        times, values = make_stream(seed=23)
        reference = run_uninterrupted(name, 0.4, times, values)
        resumed = run_split(name, 0.4, times, values, split, batch=True)
        assert resumed == reference

    @pytest.mark.parametrize("name", ALL_FILTERS)
    def test_split_with_max_lag(self, name):
        times, values = make_stream(seed=31)
        reference = run_uninterrupted(name, 0.4, times, values, max_lag=13)
        for split in (5, 13, 14, 700):
            resumed = run_split(name, 0.4, times, values, split, max_lag=13)
            assert resumed == reference

    @pytest.mark.parametrize("name", ["swing", "slide", "cache", "linear"])
    def test_split_multidimensional(self, name):
        times, values = make_stream(seed=47, dimensions=3)
        reference = run_uninterrupted(name, 0.6, times, values)
        for split in (0, 333, 1200):
            resumed = run_split(name, 0.6, times, values, split)
            assert resumed == reference

    @pytest.mark.parametrize("name", ALL_FILTERS)
    def test_random_split_points(self, name):
        times, values = make_stream(seed=53, length=400)
        reference = run_uninterrupted(name, 0.3, times, values)
        rng = np.random.default_rng(7)
        for split in rng.integers(0, 401, size=5):
            resumed = run_split(name, 0.3, times, values, int(split))
            assert resumed == reference

    def test_snapshot_does_not_alias_live_state(self):
        """Mutating the filter after snapshotting must not corrupt the snapshot."""
        times, values = make_stream(seed=61, length=600)
        reference = run_uninterrupted("slide", 0.4, times, values)
        live = create_filter("slide", 0.4)
        for t, v in zip(times[:300], values[:300]):
            live.feed(t, v)
        state = live.snapshot()
        # Keep feeding the live filter; the snapshot must stay frozen.
        for t, v in zip(times[300:], values[300:]):
            live.feed(t, v)
        live.finish()
        resumed = restore_filter(state)
        for t, v in zip(times[300:], values[300:]):
            resumed.feed(t, v)
        resumed.finish()
        assert recording_tuples(live) == reference
        prefix = reference[: len(reference) - len(recording_tuples(resumed))]
        assert prefix + recording_tuples(resumed) == reference


class TestSnapshotSemantics:
    def test_snapshot_carries_config(self):
        """A variant built by the registry restores with its options intact."""
        state = create_filter("slide-unoptimized", 0.5).snapshot()
        assert state.filter_name == "slide"
        restored = restore_filter(state)
        assert isinstance(restored, SlideFilter)
        assert restored.use_convex_hull is False

    def test_restore_applies_config_to_mismatched_instance(self):
        donor = SwingFilter(0.25, max_lag=9)
        donor.feed(0.0, 1.0)
        other = SwingFilter(99.0)
        other.restore(donor.snapshot())
        assert other.max_lag == 9
        assert other.epsilon is not None
        np.testing.assert_array_equal(other.epsilon.epsilons, [0.25])

    def test_restored_filter_has_empty_recordings(self):
        donor = SwingFilter(0.5)
        for t in range(10):
            donor.feed(float(t), float(t % 3))
        assert donor.recording_count >= 1
        restored = restore_filter(donor.snapshot())
        assert restored.recording_count == 0
        assert restored.points_processed == donor.points_processed

    def test_restore_rejects_wrong_filter(self):
        state = SwingFilter(0.5).snapshot()
        with pytest.raises(FilterStateError, match="cannot restore"):
            SlideFilter(0.5).restore(state)

    def test_restore_rejects_wrong_version(self):
        state = SwingFilter(0.5).snapshot()
        stale = FilterState(
            filter_name=state.filter_name,
            state_version=state.state_version + 1,
            config=state.config,
            base=state.base,
            payload=state.payload,
        )
        with pytest.raises(FilterStateError, match="state version"):
            SwingFilter(0.5).restore(stale)

    def test_restore_rejects_missing_fields(self):
        state = SwingFilter(0.5).snapshot()
        broken = FilterState(
            filter_name=state.filter_name,
            state_version=state.state_version,
            config=state.config,
            base=state.base,
            payload={},
        )
        with pytest.raises(FilterStateError, match="missing state fields"):
            SwingFilter(0.5).restore(broken)

    def test_restore_filter_unknown_name(self):
        state = FilterState(filter_name="no-such-filter", state_version=1)
        with pytest.raises(KeyError, match="no-such-filter"):
            restore_filter(state)

    def test_state_is_picklable_mid_interval(self):
        """Slide's hulls, lines and buffered previous segment all pickle."""
        times, values = make_stream(seed=71, length=500)
        slide = SlideFilter(0.2)
        for t, v in zip(times, values):
            slide.feed(t, v)
        blob = pickle.dumps(slide.snapshot())
        assert isinstance(pickle.loads(blob), FilterState)

    def test_finished_filter_round_trips(self):
        donor = SwingFilter(0.5)
        donor.feed(0.0, 1.0)
        donor.feed(1.0, 2.0)
        donor.finish()
        restored = restore_filter(donor.snapshot())
        assert restored.finished
        assert restored.finish() == []
