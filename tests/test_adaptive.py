"""Tests for the adaptive aggregate-precision allocator (related work [21])."""

import numpy as np
import pytest

from repro.extensions.adaptive import AdaptiveAggregateMonitor


def run_two_streams(adaptive: bool, seed: int = 17, length: int = 4_000, budget: float = 2.0):
    """One stable and one volatile stream feeding the SUM monitor."""
    rng = np.random.default_rng(seed)
    stable = np.cumsum(rng.normal(0.0, 0.01, length))
    volatile = np.cumsum(rng.normal(0.0, 0.5, length))
    monitor = AdaptiveAggregateMonitor(
        ["stable", "volatile"],
        total_epsilon=budget,
        adjustment_interval=100 if adaptive else None,
    )
    for s, v in zip(stable, volatile):
        monitor.observe("stable", s)
        monitor.observe("volatile", v)
    return monitor.close(), monitor


class TestValidation:
    def test_requires_streams(self):
        with pytest.raises(ValueError):
            AdaptiveAggregateMonitor([], total_epsilon=1.0)

    def test_requires_unique_streams(self):
        with pytest.raises(ValueError):
            AdaptiveAggregateMonitor(["a", "a"], total_epsilon=1.0)

    def test_requires_positive_budget(self):
        with pytest.raises(ValueError):
            AdaptiveAggregateMonitor(["a"], total_epsilon=0.0)

    def test_parameter_ranges(self):
        with pytest.raises(ValueError):
            AdaptiveAggregateMonitor(["a"], 1.0, adaptation_rate=1.5)
        with pytest.raises(ValueError):
            AdaptiveAggregateMonitor(["a"], 1.0, adjustment_interval=0)

    def test_unknown_stream(self):
        monitor = AdaptiveAggregateMonitor(["a"], 1.0)
        with pytest.raises(KeyError):
            monitor.observe("b", 1.0)

    def test_observe_after_close(self):
        monitor = AdaptiveAggregateMonitor(["a"], 1.0)
        monitor.observe("a", 1.0)
        monitor.close()
        with pytest.raises(RuntimeError):
            monitor.observe("a", 2.0)


class TestGuarantee:
    def test_initial_allocation_is_uniform_and_sums_to_budget(self):
        monitor = AdaptiveAggregateMonitor(["a", "b", "c", "d"], total_epsilon=2.0)
        allocation = monitor.current_allocation()
        assert all(value == pytest.approx(0.5) for value in allocation.values())
        assert sum(allocation.values()) == pytest.approx(2.0)

    def test_budget_preserved_across_reallocations(self):
        report, monitor = run_two_streams(adaptive=True)
        assert report.reallocations > 0
        assert sum(monitor.current_allocation().values()) == pytest.approx(report.total_epsilon)

    def test_aggregate_error_bounded_by_budget(self):
        for adaptive in (True, False):
            report, _ = run_two_streams(adaptive=adaptive)
            assert report.max_aggregate_error <= report.total_epsilon + 1e-9

    def test_estimated_sum_tracks_true_sum(self):
        _, monitor = run_two_streams(adaptive=True)
        assert abs(monitor.true_sum() - monitor.estimated_sum()) <= monitor.total_epsilon + 1e-9

    def test_first_observation_is_always_transmitted(self):
        monitor = AdaptiveAggregateMonitor(["a"], total_epsilon=10.0)
        assert monitor.observe("a", 5.0) is True
        assert monitor.observe("a", 5.1) is False


class TestAdaptation:
    def test_volatile_stream_receives_wider_band(self):
        report, _ = run_two_streams(adaptive=True)
        assert report.allocations["volatile"] > report.allocations["stable"]

    def test_adaptation_reduces_traffic_vs_uniform_split(self):
        adaptive_report, _ = run_two_streams(adaptive=True)
        uniform_report, _ = run_two_streams(adaptive=False)
        assert adaptive_report.messages < uniform_report.messages
        assert adaptive_report.compression_ratio > uniform_report.compression_ratio

    def test_uniform_mode_never_reallocates(self):
        report, _ = run_two_streams(adaptive=False)
        assert report.reallocations == 0
        assert report.allocations["stable"] == pytest.approx(report.allocations["volatile"])

    def test_epsilon_history_recorded(self):
        _, monitor = run_two_streams(adaptive=True)
        history = monitor._allocations["volatile"].epsilon_history
        assert len(history) >= 2
        assert history[0] == pytest.approx(1.0)

    def test_report_counts_points(self):
        report, _ = run_two_streams(adaptive=True, length=1_000)
        assert report.points == 2_000
        assert report.messages >= 2
