"""Tests for the workload generators and the dataset registry."""

import numpy as np
import pytest

from repro.data.correlated import CorrelatedWalkConfig, correlated_random_walk
from repro.data.datasets import available_datasets, load_dataset, register_dataset
from repro.data.patterns import (
    constant_signal,
    ramp_signal,
    sawtooth_signal,
    sine_signal,
    spike_signal,
    step_signal,
)
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.data.sst import (
    SST_MAX_CELSIUS,
    SST_MIN_CELSIUS,
    SST_POINT_COUNT,
    SST_SAMPLING_MINUTES,
    sea_surface_temperature,
)


class TestRandomWalk:
    def test_shapes_and_monotonic_times(self):
        times, values = random_walk(RandomWalkConfig(length=500, seed=1))
        assert times.shape == values.shape == (500,)
        assert np.all(np.diff(times) > 0)

    def test_deterministic_for_fixed_seed(self):
        a = random_walk(RandomWalkConfig(length=100, seed=42))
        b = random_walk(RandomWalkConfig(length=100, seed=42))
        assert np.array_equal(a[1], b[1])

    def test_different_seeds_differ(self):
        a = random_walk(RandomWalkConfig(length=100, seed=1))
        b = random_walk(RandomWalkConfig(length=100, seed=2))
        assert not np.array_equal(a[1], b[1])

    def test_monotone_when_probability_zero(self):
        _, values = random_walk(RandomWalkConfig(length=200, decrease_probability=0.0, seed=3))
        assert np.all(np.diff(values) >= 0)

    def test_decreasing_when_probability_one(self):
        _, values = random_walk(RandomWalkConfig(length=200, decrease_probability=1.0, seed=3))
        assert np.all(np.diff(values) <= 0)

    def test_step_magnitude_bounded(self):
        _, values = random_walk(RandomWalkConfig(length=500, max_delta=0.7, seed=4))
        assert np.max(np.abs(np.diff(values))) <= 0.7

    def test_single_point(self):
        times, values = random_walk(RandomWalkConfig(length=1, initial_value=5.0))
        assert values.tolist() == [5.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RandomWalkConfig(length=0)
        with pytest.raises(ValueError):
            RandomWalkConfig(decrease_probability=1.5)
        with pytest.raises(ValueError):
            RandomWalkConfig(max_delta=-1.0)
        with pytest.raises(ValueError):
            RandomWalkConfig(time_step=0.0)


class TestCorrelatedWalk:
    def test_shapes(self):
        times, values = correlated_random_walk(
            CorrelatedWalkConfig(length=300, dimensions=4, seed=1)
        )
        assert times.shape == (300,)
        assert values.shape == (300, 4)

    def test_full_correlation_makes_identical_dimensions(self):
        _, values = correlated_random_walk(
            CorrelatedWalkConfig(length=300, dimensions=3, correlation=1.0, seed=2)
        )
        assert np.allclose(values[:, 0], values[:, 1])
        assert np.allclose(values[:, 0], values[:, 2])

    def test_higher_correlation_increases_empirical_correlation(self):
        def mean_corr(rho):
            _, values = correlated_random_walk(
                CorrelatedWalkConfig(length=3000, dimensions=3, correlation=rho, seed=5)
            )
            increments = np.diff(values, axis=0)
            matrix = np.corrcoef(increments.T)
            off_diagonal = matrix[np.triu_indices(3, k=1)]
            return float(np.mean(off_diagonal))

        assert mean_corr(0.9) > mean_corr(0.1)

    def test_step_magnitude_bounded(self):
        _, values = correlated_random_walk(
            CorrelatedWalkConfig(length=300, dimensions=2, max_delta=0.5, seed=6)
        )
        assert np.max(np.abs(np.diff(values, axis=0))) <= 0.5

    def test_deterministic(self):
        a = correlated_random_walk(CorrelatedWalkConfig(length=50, dimensions=2, seed=7))
        b = correlated_random_walk(CorrelatedWalkConfig(length=50, dimensions=2, seed=7))
        assert np.array_equal(a[1], b[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            CorrelatedWalkConfig(dimensions=0)
        with pytest.raises(ValueError):
            CorrelatedWalkConfig(correlation=1.5)


class TestSeaSurfaceTemperature:
    def test_matches_paper_characteristics(self):
        times, values = sea_surface_temperature()
        assert len(times) == SST_POINT_COUNT
        assert times[1] - times[0] == SST_SAMPLING_MINUTES
        assert values.min() >= SST_MIN_CELSIUS - 1e-9
        assert values.max() <= SST_MAX_CELSIUS + 1e-9

    def test_irregular_up_and_down(self):
        _, values = sea_surface_temperature()
        increments = np.diff(values)
        assert np.sum(increments > 0) > 100
        assert np.sum(increments < 0) > 100

    def test_deterministic(self):
        a = sea_surface_temperature()
        b = sea_surface_temperature()
        assert np.array_equal(a[1], b[1])

    def test_quantization(self):
        _, values = sea_surface_temperature(resolution=0.01)
        assert np.allclose(np.round(values / 0.01) * 0.01, values)
        _, raw = sea_surface_temperature(resolution=0.0)
        assert not np.allclose(np.round(raw / 0.01) * 0.01, raw)

    def test_custom_length(self):
        times, values = sea_surface_temperature(length=100)
        assert len(times) == len(values) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            sea_surface_temperature(length=0)
        with pytest.raises(ValueError):
            sea_surface_temperature(sampling_minutes=0.0)
        with pytest.raises(ValueError):
            sea_surface_temperature(resolution=-0.1)


class TestPatterns:
    def test_constant(self):
        _, values = constant_signal(length=10, value=2.5)
        assert np.all(values == 2.5)

    def test_ramp(self):
        times, values = ramp_signal(length=10, slope=2.0, intercept=1.0)
        assert values[0] == 1.0
        assert values[-1] == pytest.approx(1.0 + 2.0 * times[-1])

    def test_step(self):
        _, values = step_signal(length=10, low=0.0, high=5.0, step_at=4)
        assert values[3] == 0.0
        assert values[4] == 5.0

    def test_sine_amplitude(self):
        _, values = sine_signal(length=1000, amplitude=3.0, period=100.0)
        assert np.max(values) == pytest.approx(3.0, abs=0.01)

    def test_sawtooth_range(self):
        _, values = sawtooth_signal(length=1000, amplitude=2.0, period=100.0)
        assert np.max(values) <= 2.0 + 1e-9
        assert np.min(values) >= -2.0 - 1e-9

    def test_spike(self):
        _, values = spike_signal(length=100, base=0.0, spike_height=10.0, spike_every=25)
        assert values[0] == 10.0
        assert values[1] == 0.0
        assert values[25] == 10.0

    def test_validation(self):
        with pytest.raises(ValueError):
            constant_signal(length=0)
        with pytest.raises(ValueError):
            sine_signal(period=0.0)
        with pytest.raises(ValueError):
            step_signal(length=10, step_at=50)
        with pytest.raises(ValueError):
            spike_signal(spike_every=0)


class TestDatasetRegistry:
    def test_builtin_datasets_present(self):
        names = available_datasets()
        for expected in ("sst", "random-walk", "correlated-5d", "sine"):
            assert expected in names

    def test_load_dataset(self):
        times, values = load_dataset("sst")
        assert len(times) == SST_POINT_COUNT

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            load_dataset("does-not-exist")

    def test_register_and_overwrite(self):
        register_dataset("tmp-test", lambda: (np.arange(3.0), np.zeros(3)), "temporary")
        try:
            times, values = load_dataset("tmp-test")
            assert len(times) == 3
            with pytest.raises(ValueError):
                register_dataset("tmp-test", lambda: (np.arange(3.0), np.zeros(3)), "again")
            register_dataset(
                "tmp-test", lambda: (np.arange(4.0), np.zeros(4)), "again", overwrite=True
            )
            times, _ = load_dataset("tmp-test")
            assert len(times) == 4
        finally:
            from repro.data.datasets import _REGISTRY

            _REGISTRY.pop("tmp-test", None)

    def test_all_builtin_datasets_loadable(self):
        for name in available_datasets():
            times, values = load_dataset(name)
            assert len(times) == len(values)
            assert len(times) > 0
