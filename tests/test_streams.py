"""Tests for the streaming substrate (sources, transport, pipeline)."""

import numpy as np
import pytest

from repro.core.swing import SwingFilter
from repro.core.types import DataPoint
from repro.streams.pipeline import MonitoringPipeline
from repro.streams.source import ArraySource, CallbackSource, CsvSource, IterableSource
from repro.streams.transport import Channel, Receiver, Transmitter


class TestSources:
    def test_array_source(self):
        source = ArraySource([0.0, 1.0, 2.0], [5.0, 6.0, 7.0])
        points = list(source)
        assert len(source) == 3
        assert points[2].component(0) == 7.0

    def test_array_source_multidimensional(self):
        source = ArraySource([0.0, 1.0], [[1.0, 2.0], [3.0, 4.0]])
        points = list(source)
        assert points[0].dimensions == 2

    def test_array_source_validation(self):
        with pytest.raises(ValueError):
            ArraySource([0.0, 1.0], [1.0])
        with pytest.raises(ValueError):
            ArraySource([[0.0], [1.0]], [1.0, 2.0])

    def test_iterable_source_accepts_tuples_and_points(self):
        source = IterableSource([(0.0, 1.0), DataPoint(1.0, 2.0)])
        points = list(source)
        assert [p.time for p in points] == [0.0, 1.0]

    def test_callback_source_stops_on_none(self):
        samples = iter([(0.0, 1.0), (1.0, 2.0), None, (2.0, 3.0)])
        source = CallbackSource(lambda: next(samples))
        assert len(list(source)) == 2

    def test_callback_source_limit(self):
        counter = iter(range(100))
        source = CallbackSource(lambda: (float(next(counter)), 0.0), limit=5)
        assert len(list(source)) == 5

    def test_callback_source_validation(self):
        with pytest.raises(ValueError):
            CallbackSource(lambda: None, limit=-1)

    def test_csv_source(self, tmp_path):
        path = tmp_path / "signal.csv"
        path.write_text("t,x,y\n0,1.0,10.0\n1,2.0,20.0\n2,3.0,30.0\n")
        points = list(CsvSource(path))
        assert len(points) == 3
        assert points[1].value.tolist() == [2.0, 20.0]

    def test_csv_source_selected_columns(self, tmp_path):
        path = tmp_path / "signal.csv"
        path.write_text("t,x,y\n0,1.0,10.0\n1,2.0,20.0\n")
        points = list(CsvSource(path, value_columns=[2]))
        assert points[0].dimensions == 1
        assert points[0].component(0) == 10.0

    def test_to_arrays(self):
        source = ArraySource([0.0, 1.0], [1.0, 2.0])
        times, values = source.to_arrays()
        assert times.tolist() == [0.0, 1.0]
        assert values.shape == (2, 1)


class TestTransport:
    def test_transmitter_counts_and_compression(self):
        transmitter = Transmitter(SwingFilter(0.5))
        for t in range(20):
            transmitter.observe(float(t), 0.01 * t)
        transmitter.close()
        assert transmitter.observed_points == 20
        assert transmitter.channel.messages_sent == transmitter.receiver.recording_count
        assert transmitter.compression_ratio() >= 1.0
        assert transmitter.suppressed_points == 20 - transmitter.channel.messages_sent

    def test_channel_byte_accounting(self):
        transmitter = Transmitter(SwingFilter(0.1))
        transmitter.observe(0.0, 1.0)
        transmitter.close()
        assert transmitter.channel.bytes_sent > 0

    def test_receiver_lag_tracking(self):
        transmitter = Transmitter(SwingFilter(100.0))
        for t in range(30):
            transmitter.observe(float(t), float(t % 3))
        # A huge epsilon means only the initial recording was transmitted, so
        # the receiver lags behind by nearly the whole stream.
        assert transmitter.receiver.max_lag_seen >= 25
        transmitter.close()

    def test_receiver_reconstruction_matches_filter(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 1.0
        transmitter = Transmitter(SwingFilter(epsilon))
        for t, v in zip(times, values):
            transmitter.observe(t, v)
        transmitter.close()
        approx = transmitter.receiver.approximation()
        deviations = np.abs(approx.deviations(list(zip(times, values))))
        assert float(deviations.max()) <= epsilon + 1e-8

    def test_channel_multiple_receivers(self):
        channel = Channel()
        first, second = Receiver(), Receiver()
        channel.attach(first)
        transmitter = Transmitter(SwingFilter(0.5), channel=channel, receiver=second)
        transmitter.observe(0.0, 1.0)
        transmitter.close()
        assert first.recording_count == second.recording_count >= 1


class TestPipeline:
    def test_run_with_filter_instance(self, smooth_walk):
        times, values = smooth_walk
        pipeline = MonitoringPipeline(SwingFilter(0.5))
        report = pipeline.run(zip(times, values))
        assert report.points == len(times)
        assert report.recordings >= 1
        assert report.compression_ratio > 1.0
        assert report.max_absolute_error <= 0.5 + 1e-8
        assert report.messages_sent == report.recordings
        assert report.bytes_sent > 0

    def test_run_with_filter_name(self, smooth_walk):
        times, values = smooth_walk
        pipeline = MonitoringPipeline("slide", epsilon=0.5)
        report = pipeline.run(zip(times, values))
        assert report.filter_name == "slide"
        assert report.max_absolute_error <= 0.5 + 1e-8

    def test_filter_name_requires_epsilon(self):
        with pytest.raises(ValueError):
            MonitoringPipeline("slide")

    def test_empty_stream_report(self):
        report = MonitoringPipeline(SwingFilter(1.0)).run([])
        assert report.points == 0
        assert report.recordings == 0
        assert report.compression_ratio == 0.0

    def test_approximation_accessible_after_run(self, smooth_walk):
        times, values = smooth_walk
        pipeline = MonitoringPipeline(SwingFilter(0.5))
        pipeline.run(zip(times, values))
        approx = pipeline.approximation()
        assert approx.value_at(float(times[0])).shape == (1,)

    def test_mean_error_percent_reported(self, sst_signal):
        times, values = sst_signal
        pipeline = MonitoringPipeline("swing", epsilon=0.04)
        report = pipeline.run(zip(times, values))
        assert 0.0 <= report.mean_error_percent_of_range <= 1.0 + 1e-9
