"""Tests for the multi-process, async, checkpointable ingestion runtime."""

from __future__ import annotations

import asyncio
import functools
import multiprocessing
import os

import numpy as np
import pytest
from crash_harness import (
    assert_stores_identical,
    load_workload,
    make_workload,
    store_log_digest,
)

from repro.pipeline import BatchIngestor
from repro.pipeline.chunking import iter_chunks
from repro.runtime import (
    ArrayAsyncSource,
    CheckpointManager,
    IngestCheckpoint,
    ParallelIngestor,
    QueueAsyncSource,
    StreamTask,
    ingest_stream_checkpointed,
    run_ingest,
)
from repro.storage import open_store


# --------------------------------------------------------------------------- #
# Async sources
# --------------------------------------------------------------------------- #
class TestAsyncIngestion:
    def test_array_async_source_matches_sync_ingest(self):
        times, values = make_workload(seed=1)
        reference = BatchIngestor("swing", epsilon=0.5, chunk_size=512).run(times, values)

        async def run():
            ingestor = BatchIngestor("swing", epsilon=0.5, chunk_size=512)
            await ingestor.aingest_stream(ArrayAsyncSource(times, values, chunk_size=512))
            return ingestor.close()

        report = asyncio.run(run())
        assert report.points == reference.points
        assert report.recordings == reference.recordings

    def test_queue_async_source_with_producer_task(self):
        times, values = make_workload(seed=2)
        reference = BatchIngestor("slide", epsilon=0.5).run(times, values)

        async def run():
            source = QueueAsyncSource(maxsize=2)

            async def produce():
                for chunk_times, chunk_values in iter_chunks(times, values, 777):
                    await source.put(chunk_times, chunk_values)
                await source.close()

            producer = asyncio.create_task(produce())
            ingestor = BatchIngestor("slide", epsilon=0.5)
            await ingestor.aingest_stream(source)
            await producer
            return ingestor.close()

        report = asyncio.run(run())
        assert report.points == reference.points
        assert report.recordings == reference.recordings

    def test_queue_source_rejects_after_close(self):
        async def run():
            source = QueueAsyncSource()
            await source.close()
            with pytest.raises(RuntimeError, match="closed"):
                await source.put([1.0], [2.0])

        asyncio.run(run())

    def test_queue_source_close_nowait_on_full_queue(self):
        async def run():
            source = QueueAsyncSource(maxsize=1)
            source.put_nowait([1.0], [2.0])
            with pytest.raises(asyncio.QueueFull):
                source.close_nowait()
            # The failed close must not have latched the closed flag.
            iterator = source.__aiter__()
            await asyncio.wait_for(iterator.__anext__(), timeout=1)
            source.close_nowait()

        asyncio.run(run())

    def test_array_source_validates_arguments(self):
        with pytest.raises(ValueError, match="chunk_size"):
            ArrayAsyncSource([1.0], [1.0], chunk_size=0)
        with pytest.raises(ValueError, match="interval"):
            ArrayAsyncSource([1.0], [1.0], interval=-1.0)


# --------------------------------------------------------------------------- #
# Checkpoint manager
# --------------------------------------------------------------------------- #
class TestCheckpointManager:
    def test_save_load_round_trip(self, tmp_path):
        manager = CheckpointManager(tmp_path / "ck")
        from repro.core import SwingFilter

        swing = SwingFilter(0.5)
        swing.feed(0.0, 1.0)
        checkpoint = IngestCheckpoint(
            stream="s/1",
            filter_state=swing.snapshot(),
            points_ingested=1,
            recordings_stored=1,
            chunk_size=4096,
        )
        manager.save(checkpoint)
        loaded = manager.load("s/1")
        assert loaded.points_ingested == 1
        assert loaded.filter_state.filter_name == "swing"
        assert not loaded.complete
        assert manager.exists("s/1")
        assert [c.stream for c in manager.list()] == ["s/1"]
        manager.delete("s/1")
        assert manager.load("s/1") is None

    def test_version_mismatch_rejected(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        checkpoint = IngestCheckpoint(
            stream="x",
            filter_state=None,
            points_ingested=0,
            recordings_stored=0,
            chunk_size=1,
            version=999,
        )
        manager.save(checkpoint)
        with pytest.raises(ValueError, match="version"):
            manager.load("x")

    def test_colliding_stream_names_get_distinct_files(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        assert manager.path_for("a/b") != manager.path_for("a_b")


# --------------------------------------------------------------------------- #
# Checkpointed ingest + kill/resume
# --------------------------------------------------------------------------- #
def _crashing_ingest(store_dir, checkpoint_dir, seed, chunk_size, every, crash_after):
    """Child-process target: ingest, then die hard mid-stream (no cleanup)."""
    times, values = make_workload(seed)
    store = open_store(store_dir, autoflush=False)

    def doomed_chunks():
        for index, chunk in enumerate(iter_chunks(times, values, chunk_size)):
            if index == crash_after:
                os._exit(17)  # simulate SIGKILL: no flush, no finally blocks
            yield chunk

    ingest_stream_checkpointed(
        store,
        "victim",
        "swing",
        0.5,
        chunks=doomed_chunks(),
        chunk_size=chunk_size,
        checkpoint=checkpoint_dir,
        checkpoint_every=every,
    )
    os._exit(0)  # pragma: no cover - the crash must happen first


class TestCheckpointedIngest:
    def test_plain_run_matches_batch_ingestor(self, tmp_path):
        times, values = make_workload(seed=3)
        reference = BatchIngestor("swing", epsilon=0.5, chunk_size=512).run(times, values)
        report = run_ingest(
            tmp_path / "store", "s", "swing", 0.5, times, values, chunk_size=512
        )
        assert report.points == reference.points
        assert report.recordings == reference.recordings
        store = open_store(tmp_path / "store")
        assert store.describe("s").recordings == reference.recordings

    def test_resume_of_complete_run_is_noop(self, tmp_path):
        times, values = make_workload(seed=4)
        run_ingest(
            tmp_path / "store", "s", "swing", 0.5, times, values,
            checkpoint=tmp_path / "ck",
        )
        before = open_store(tmp_path / "store").describe("s").recordings
        report = run_ingest(
            tmp_path / "store", "s", "swing", 0.5, times, values,
            checkpoint=tmp_path / "ck", resume=True,
        )
        assert report.points == 0
        assert open_store(tmp_path / "store").describe("s").recordings == before

    def test_resume_of_complete_run_validates_store_contents(self, tmp_path):
        """A complete checkpoint pointed at the wrong (or deleted) store must
        fail loudly, not report success over missing data."""
        times, values = make_workload(seed=4, length=500)
        run_ingest(
            tmp_path / "store", "s", "swing", 0.5, times, values,
            checkpoint=tmp_path / "ck",
        )
        with pytest.raises(ValueError, match="complete"):
            run_ingest(
                tmp_path / "other-store", "s", "swing", 0.5, times, values,
                checkpoint=tmp_path / "ck", resume=True,
            )

    def test_resume_requires_checkpoint_location(self, tmp_path):
        times, values = make_workload(seed=5, length=10)
        with pytest.raises(ValueError, match="resume"):
            run_ingest(tmp_path / "store", "s", "swing", 0.5, times, values, resume=True)

    def test_resume_rejects_conflicting_filter_or_epsilon(self, tmp_path):
        """The checkpointed config governs the resumed run, so conflicting
        request arguments must fail loudly instead of being silently ignored."""
        times, values = make_workload(seed=12, length=2000)
        store = open_store(tmp_path / "store", autoflush=False)

        def interrupted():
            for index, chunk in enumerate(iter_chunks(times, values, 256)):
                if index == 4:
                    raise RuntimeError("interrupted")
                yield chunk

        with pytest.raises(RuntimeError, match="interrupted"):
            ingest_stream_checkpointed(
                store, "s", "swing", 0.5,
                chunks=interrupted(),
                chunk_size=256, checkpoint=tmp_path / "ck", checkpoint_every=2,
            )
        store.close()
        with pytest.raises(ValueError, match="epsilon"):
            run_ingest(
                tmp_path / "store", "s", "swing", 1.0, times, values,
                chunk_size=256, checkpoint=tmp_path / "ck", resume=True,
            )
        with pytest.raises(ValueError, match="filter"):
            run_ingest(
                tmp_path / "store", "s", "slide", 0.5, times, values,
                chunk_size=256, checkpoint=tmp_path / "ck", resume=True,
            )

    def test_chunk_size_mismatch_rejected_on_resume(self, tmp_path):
        times, values = make_workload(seed=6, length=3000)
        store = open_store(tmp_path / "store", autoflush=False)
        manager = CheckpointManager(tmp_path / "ck")
        # Interrupt by ingesting only a prefix through the chunks form.
        ingest_stream_checkpointed(
            store, "s", "swing", 0.5,
            chunks=iter_chunks(times[:1024], values[:1024], 256),
            chunk_size=256, checkpoint=manager, checkpoint_every=2,
        )
        store.close()
        manager.save(
            IngestCheckpoint(
                stream="s",
                filter_state=manager.load("s").filter_state,
                points_ingested=512,
                recordings_stored=0,
                chunk_size=256,
            )
        )
        with pytest.raises(ValueError, match="chunk_size"):
            run_ingest(
                tmp_path / "store", "s", "swing", 0.5, times, values,
                chunk_size=512, checkpoint=manager, resume=True,
            )

    def test_resume_without_checkpoint_refuses_existing_data(self, tmp_path):
        """A stream with data but no checkpoint may be a legitimate earlier
        ingest — resume must refuse instead of truncating or appending."""
        times, values = make_workload(seed=7, length=3000)
        run_ingest(tmp_path / "store", "s", "swing", 0.5, times, values)
        before = open_store(tmp_path / "store").describe("s").recordings
        with pytest.raises(ValueError, match="no checkpoint found"):
            run_ingest(
                tmp_path / "store", "s", "swing", 0.5, times, values,
                checkpoint=tmp_path / "ck", resume=True,
            )
        assert open_store(tmp_path / "store").describe("s").recordings == before

    def test_initial_checkpoint_covers_kill_before_first_periodic_one(self, tmp_path):
        """A checkpointed run writes an initial checkpoint before its first
        chunk, so a kill at any point leaves something to resume from."""
        seed, chunk_size = 8, 256
        times, values = make_workload(seed)
        context = multiprocessing.get_context("spawn")
        # checkpoint_every=100 > total chunks: only the initial checkpoint
        # exists when the crash hits.
        child = context.Process(
            target=_crashing_ingest,
            args=(str(tmp_path / "store"), str(tmp_path / "ck"), seed,
                  chunk_size, 100, 2),
        )
        child.start()
        child.join(timeout=120)
        assert child.exitcode == 17
        checkpoint = CheckpointManager(tmp_path / "ck").load("victim")
        assert checkpoint is not None and checkpoint.points_ingested == 0
        run_ingest(
            tmp_path / "store", "victim", "swing", 0.5, times, values,
            chunk_size=chunk_size, checkpoint=tmp_path / "ck", resume=True,
        )
        run_ingest(
            tmp_path / "reference", "victim", "swing", 0.5, times, values,
            chunk_size=chunk_size,
        )
        assert_stores_identical(
            open_store(tmp_path / "reference"), open_store(tmp_path / "store")
        )

    @pytest.mark.parametrize("crash_after", [5, 8])
    def test_kill_and_resume_is_bit_identical(self, tmp_path, crash_after):
        """A hard-killed ingest resumes into a store bit-identical to an
        uninterrupted run — no reprocessed points, no duplicated recordings."""
        seed, chunk_size, every = 8, 256, 3
        times, values = make_workload(seed)

        # Reference: uninterrupted run into its own store.
        run_ingest(
            tmp_path / "reference", "victim", "swing", 0.5, times, values,
            chunk_size=chunk_size,
        )

        # Crash run: child process dies mid-stream with os._exit (nothing is
        # flushed or finalized — the store log may be ahead of the catalog
        # and the checkpoint).
        context = multiprocessing.get_context("spawn")
        child = context.Process(
            target=_crashing_ingest,
            args=(str(tmp_path / "store"), str(tmp_path / "ck"), seed,
                  chunk_size, every, crash_after),
        )
        child.start()
        child.join(timeout=120)
        assert child.exitcode == 17

        manager = CheckpointManager(tmp_path / "ck")
        checkpoint = manager.load("victim")
        assert checkpoint is not None and not checkpoint.complete
        # The crash happened between checkpoints: the log holds appends the
        # checkpoint does not know about, which resume must roll back.
        assert checkpoint.points_ingested < crash_after * chunk_size

        report = run_ingest(
            tmp_path / "store", "victim", "swing", 0.5, times, values,
            chunk_size=chunk_size, checkpoint=manager, resume=True,
        )
        assert report.points == len(times) - checkpoint.points_ingested
        assert manager.load("victim").complete

        reference = open_store(tmp_path / "reference")
        resumed = open_store(tmp_path / "store")
        assert_stores_identical(reference, resumed)
        assert store_log_digest(tmp_path / "reference") == store_log_digest(
            tmp_path / "store"
        )
        entry_a = reference.describe("victim")
        entry_b = resumed.describe("victim")
        assert entry_a.blocks == entry_b.blocks
        assert entry_a.recordings == entry_b.recordings


# --------------------------------------------------------------------------- #
# Parallel ingestion
# --------------------------------------------------------------------------- #
class TestParallelIngestor:
    def make_tasks(self, count=6, length=4000):
        return [
            StreamTask(
                name=f"stream-{index}",
                loader=functools.partial(load_workload, index, length),
            )
            for index in range(count)
        ]

    def test_workers_match_single_process_bit_for_bit(self, tmp_path):
        tasks = self.make_tasks()
        parallel = ParallelIngestor(
            tmp_path / "parallel", "swing", 0.5, workers=2, shards=4
        ).run(tasks)
        serial = ParallelIngestor(
            tmp_path / "serial", "swing", 0.5, workers=1, shards=4
        ).run(tasks)
        assert parallel.points == serial.points
        assert parallel.recordings == serial.recordings
        assert parallel.streams == serial.streams == len(tasks)
        assert_stores_identical(
            open_store(tmp_path / "parallel"), open_store(tmp_path / "serial")
        )
        assert store_log_digest(tmp_path / "parallel") == store_log_digest(
            tmp_path / "serial"
        )

    def test_inline_task_arrays(self, tmp_path):
        times, values = make_workload(seed=100, length=2000)
        tasks = [StreamTask(name="inline", times=times, values=values)]
        report = ParallelIngestor(tmp_path / "store", "swing", 0.5, workers=2).run(tasks)
        assert report.points == 2000
        store = open_store(tmp_path / "store")
        assert store.describe("inline").recordings == report.recordings

    def test_shard_alignment(self, tmp_path):
        from repro.storage.sharded_store import shard_index

        tasks = self.make_tasks(count=5, length=64)
        report = ParallelIngestor(
            tmp_path / "store", "cache", 0.5, workers=2, shards=3
        ).run(tasks)
        for stream_report in report.per_stream:
            assert stream_report.shard == shard_index(stream_report.name, 3)
        store = open_store(tmp_path / "store")
        assert store.shard_count == 3
        assert sorted(store.stream_names()) == sorted(t.name for t in tasks)

    def test_duplicate_stream_names_rejected(self, tmp_path):
        times, values = make_workload(seed=0, length=8)
        tasks = [
            StreamTask(name="dup", times=times, values=values),
            StreamTask(name="dup", times=times, values=values),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            ParallelIngestor(tmp_path / "store", "swing", 0.5).run(tasks)

    def test_task_validation(self):
        with pytest.raises(ValueError, match="either"):
            StreamTask(name="x")
        with pytest.raises(ValueError, match="either"):
            StreamTask(
                name="x",
                times=np.array([1.0]),
                values=np.array([1.0]),
                loader=lambda: None,
            )

    def test_per_stream_epsilon_override(self, tmp_path):
        times, values = make_workload(seed=9, length=2000)
        tasks = [
            StreamTask(name="fine", times=times, values=values, epsilon=0.05),
            StreamTask(name="coarse", times=times, values=values, epsilon=5.0),
        ]
        ParallelIngestor(tmp_path / "store", "swing", 0.5, workers=1, shards=2).run(tasks)
        store = open_store(tmp_path / "store")
        assert store.describe("fine").recordings > store.describe("coarse").recordings
        assert store.describe("fine").epsilon == [0.05]

    def test_parallel_with_checkpoints_resumes_completed_streams(self, tmp_path):
        tasks = self.make_tasks(count=4, length=1500)
        ingestor = ParallelIngestor(
            tmp_path / "store", "swing", 0.5, workers=2, shards=2,
            checkpoint=tmp_path / "ck",
        )
        first = ingestor.run(tasks)
        assert first.points == 4 * 1500
        resumed = ParallelIngestor(
            tmp_path / "store", "swing", 0.5, workers=2, shards=2,
            checkpoint=tmp_path / "ck", resume=True,
        ).run(tasks)
        assert resumed.points == 0  # every stream checkpointed as complete
        manager = CheckpointManager(tmp_path / "ck")
        assert all(c.complete for c in manager.list())

    def test_rejects_bad_worker_count(self, tmp_path):
        with pytest.raises(ValueError, match="workers"):
            ParallelIngestor(tmp_path / "store", "swing", 0.5, workers=0)
        with pytest.raises(ValueError, match="chunk_size"):
            ParallelIngestor(tmp_path / "store", "swing", 0.5, chunk_size=0)
        with pytest.raises(ValueError, match="checkpoint_every"):
            ParallelIngestor(tmp_path / "store", "swing", 0.5, checkpoint_every=0)
        with pytest.raises(ValueError, match="resume"):
            ParallelIngestor(tmp_path / "store", "swing", 0.5, resume=True)
        assert not (tmp_path / "store").exists()

    def test_refuses_to_shard_an_existing_plain_store(self, tmp_path):
        """A plain store must never be silently converted (its streams would
        become invisible behind the sharded view)."""
        times, values = make_workload(seed=1, length=50)
        plain = open_store(tmp_path / "store", autoflush=False)
        plain.append_arrays("old-stream", times, values)
        plain.close()
        tasks = [StreamTask(name="new-stream", times=times, values=values)]
        with pytest.raises(ValueError, match="not sharded"):
            ParallelIngestor(tmp_path / "store", "swing", 0.5, workers=2).run(tasks)
        reopened = open_store(tmp_path / "store")
        assert "old-stream" in reopened
