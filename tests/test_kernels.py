"""Property/fuzz suites for the shared array kernels and the slide fast path.

Three layers are pinned here:

1. the kernels in :mod:`repro.core.kernels` compute exactly the scalar
   expressions they document (bitwise — no reassociation, no pairwise sums),
2. the array-native convex hull (:meth:`IncrementalConvexHull.add_many`) and
   the chain tangent binary searches agree exactly with their per-point /
   linear-scan references, and
3. the filters' batch paths emit recordings bit-identical to per-point
   ``feed()`` and to the legacy per-point batch driver, across random
   signals x {connect_segments on/off, 1-dim/multi-dim, max_lag fallback,
   use_convex_hull on/off}.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import kernels
from repro.core.base import StreamFilter
from repro.core.slide import SlideFilter
from repro.core.swing import SwingFilter
from repro.geometry.hull import IncrementalConvexHull
from repro.geometry.lines import Line
from repro.geometry.tangents import (
    max_slope_lower_line,
    max_slope_lower_tangent,
    min_slope_upper_line,
    min_slope_upper_tangent,
)


def make_signal(seed: int, length: int, dimensions: int = 1, noise: float = 0.6):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(0.25, 1.75, length))
    if dimensions == 1:
        values = np.cumsum(rng.normal(0.0, noise, length))
    else:
        values = np.cumsum(rng.normal(0.0, noise, (length, dimensions)), axis=0)
    return times, values


# --------------------------------------------------------------------------- #
# Arithmetic kernels
# --------------------------------------------------------------------------- #
class TestFoldKernels:
    @pytest.mark.parametrize("length", [0, 1, 7, 300, kernels.FOLD_BLOCK + 37])
    def test_fold_left_sum_matches_scalar_loop(self, length):
        rng = np.random.default_rng(length)
        values = rng.normal(0.0, 1e6, length) * rng.uniform(1e-8, 1e8, length)
        total = 0.125
        for v in values.tolist():
            total += v
        assert kernels.fold_left_sum(0.125, values) == total

    @pytest.mark.parametrize("length", [0, 1, 9, kernels.FOLD_BLOCK + 11])
    @pytest.mark.parametrize("dims", [1, 3])
    def test_fold_left_sum_rows_matches_scalar_loop(self, length, dims):
        rng = np.random.default_rng(length * 7 + dims)
        rows = rng.normal(0.0, 100.0, (length, dims))
        initial = rng.normal(0.0, 1.0, dims)
        expected = initial.copy()
        for row in rows:
            expected = expected + row
        result = kernels.fold_left_sum_rows(initial, rows)
        assert np.array_equal(result, expected)
        # The initial accumulator must never be mutated.
        assert not np.shares_memory(result, initial)

    @pytest.mark.parametrize("length", [1, 50, kernels.FOLD_BLOCK + 3])
    @pytest.mark.parametrize("dims", [1, 2])
    def test_fold_left_moment_sums_matches_per_point_updates(self, length, dims):
        rng = np.random.default_rng(length + dims)
        ts = np.cumsum(rng.uniform(0.1, 2.0, length))
        xs = rng.normal(0.0, 5.0, (length, dims))
        sum_t, sum_tt = 3.25, 11.5
        sum_x = rng.normal(0.0, 1.0, dims)
        sum_xt = rng.normal(0.0, 1.0, dims)
        expected_t, expected_tt = sum_t, sum_tt
        expected_x, expected_xt = sum_x.copy(), sum_xt.copy()
        for t, x in zip(ts.tolist(), xs):
            expected_t += t
            expected_tt += t * t
            expected_x = expected_x + x
            expected_xt = expected_xt + x * t
        got_t, got_tt, got_x, got_xt = kernels.fold_left_moment_sums(
            sum_t, sum_tt, sum_x, sum_xt, ts, xs
        )
        assert got_t == expected_t
        assert got_tt == expected_tt
        assert np.array_equal(got_x, expected_x)
        assert np.array_equal(got_xt, expected_xt)


class TestLineKernels:
    def test_evaluate_lines_matches_value_at(self):
        rng = np.random.default_rng(5)
        lines = [Line(rng.normal(), rng.normal()) for _ in range(4)]
        ts = np.cumsum(rng.uniform(0.1, 1.0, 64))
        out = kernels.evaluate_lines(
            ts,
            np.array([l.slope for l in lines]),
            np.array([l.intercept for l in lines]),
        )
        for k, t in enumerate(ts):
            for i, line in enumerate(lines):
                assert out[k, i] == line.value_at(float(t))

    def test_event_masks_match_scalar_conditions(self):
        rng = np.random.default_rng(6)
        dims = 2
        ts = np.cumsum(rng.uniform(0.1, 1.0, 128))
        xs = rng.normal(0.0, 3.0, (128, dims))
        epsilon = np.array([0.5, 1.25])
        up_s, up_i = rng.normal(0, 1, dims), rng.normal(0, 1, dims)
        lo_s, lo_i = up_s - 0.3, up_i - 2.0
        upper_values = kernels.evaluate_lines(ts, up_s, up_i)
        lower_values = kernels.evaluate_lines(ts, lo_s, lo_i)
        violates, needs = kernels.slide_event_masks(
            xs, upper_values, lower_values, epsilon
        )
        for k in range(len(ts)):
            expect_violates = any(
                xs[k, i] > upper_values[k, i] + epsilon[i]
                or xs[k, i] < lower_values[k, i] - epsilon[i]
                for i in range(dims)
            )
            expect_needs = any(
                xs[k, i] > lower_values[k, i] + epsilon[i]
                or xs[k, i] < upper_values[k, i] - epsilon[i]
                for i in range(dims)
            )
            assert bool(violates[k]) == expect_violates
            assert bool(needs[k]) == expect_needs

    def test_event_masks_1d_agree_with_generic(self):
        rng = np.random.default_rng(7)
        ts = np.cumsum(rng.uniform(0.1, 1.0, 256))
        xs = rng.normal(0.0, 3.0, (256, 1))
        epsilon = np.array([0.75])
        up_s, up_i = np.array([0.2]), np.array([1.0])
        lo_s, lo_i = np.array([0.1]), np.array([-1.0])
        uv = kernels.evaluate_lines(ts, up_s, up_i)
        lv = kernels.evaluate_lines(ts, lo_s, lo_i)
        violates, needs = kernels.slide_event_masks(xs, uv, lv, epsilon)
        violates_1d, needs_1d = kernels.slide_event_masks_1d(
            xs[:, 0], ts * up_s[0] + up_i[0], ts * lo_s[0] + lo_i[0], epsilon[0]
        )
        assert np.array_equal(violates, violates_1d)
        assert np.array_equal(needs, needs_1d)

    def test_first_true(self):
        assert kernels.first_true(np.array([False, False, True, True])) == 2
        assert kernels.first_true(np.array([False, False])) == 2
        assert kernels.first_true(np.array([], dtype=bool)) == 0


# --------------------------------------------------------------------------- #
# Hull bulk insertion
# --------------------------------------------------------------------------- #
class TestHullAddMany:
    @pytest.mark.parametrize("seed", range(8))
    def test_bulk_chains_match_per_point(self, seed):
        rng = np.random.default_rng(seed)
        length = int(rng.integers(2, 600))
        times = np.cumsum(rng.uniform(0.05, 2.0, length))
        values = np.cumsum(rng.normal(0.0, rng.uniform(0.01, 2.0), length))
        reference = IncrementalConvexHull()
        for t, x in zip(times.tolist(), values.tolist()):
            reference.add(t, x)
        bulk = IncrementalConvexHull()
        position = 0
        while position < length:
            step = int(rng.integers(1, 64))
            bulk.add_many(times[position : position + step], values[position : position + step])
            position += step
        assert bulk.upper == reference.upper
        assert bulk.lower == reference.lower
        assert bulk.size == reference.size

    def test_interleaved_scalar_and_bulk(self):
        rng = np.random.default_rng(99)
        times = np.cumsum(rng.uniform(0.1, 1.0, 400))
        values = rng.normal(0.0, 1.0, 400)
        reference = IncrementalConvexHull(zip(times, values))
        mixed = IncrementalConvexHull()
        position = 0
        toggle = False
        while position < 400:
            step = int(rng.integers(1, 40))
            chunk_t = times[position : position + step]
            chunk_x = values[position : position + step]
            if toggle:
                for t, x in zip(chunk_t, chunk_x):
                    mixed.add(t, x)
            else:
                mixed.add_many(chunk_t, chunk_x)
            toggle = not toggle
            position += step
        assert mixed.vertices() == reference.vertices()

    def test_collinear_runs_keep_endpoints_only(self):
        hull = IncrementalConvexHull()
        times = np.arange(50.0)
        hull.add_many(times, 2.0 * times + 1.0)
        assert hull.vertices() == [(0.0, 1.0), (49.0, 99.0)]

    def test_large_bulk_uses_vectorized_merge(self):
        rng = np.random.default_rng(17)
        times = np.arange(5000.0)
        values = np.cumsum(rng.normal(0.0, 0.4, 5000))
        reference = IncrementalConvexHull(zip(times, values))
        bulk = IncrementalConvexHull()
        bulk.add_many(times, values)  # > scalar-merge limit in one call
        assert bulk.vertices() == reference.vertices()

    def test_add_many_validates_order(self):
        hull = IncrementalConvexHull([(0.0, 0.0), (1.0, 1.0)])
        with pytest.raises(ValueError):
            hull.add_many(np.array([0.5, 2.0]), np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            hull.add_many(np.array([2.0, 2.0]), np.array([0.0, 0.0]))
        with pytest.raises(ValueError):
            hull.add_many(np.array([[2.0], [3.0]]), np.array([[0.0], [0.0]]))

    def test_pending_points_visible_to_reads(self):
        hull = IncrementalConvexHull()
        hull.add_many(np.array([0.0, 1.0, 2.0]), np.array([0.0, 5.0, 0.0]))
        assert hull.size == 3
        assert hull.contains_time(1.5)
        chain_t, chain_x = hull.upper_chain()
        assert chain_t.tolist() == [0.0, 1.0, 2.0]
        chain_t, chain_x = hull.lower_chain()
        assert chain_t.tolist() == [0.0, 2.0]


# --------------------------------------------------------------------------- #
# Tangent binary searches
# --------------------------------------------------------------------------- #
class TestChainTangents:
    @pytest.mark.parametrize("seed", range(10))
    def test_tangents_match_linear_scan_over_vertices(self, seed):
        """The O(log m) chain searches pick the same support as the O(m) scan."""
        rng = np.random.default_rng(seed)
        length = int(rng.integers(3, 300))
        times = np.cumsum(rng.uniform(0.1, 1.5, length))
        values = np.cumsum(rng.normal(0.0, rng.uniform(0.05, 1.5), length))
        epsilon = float(rng.uniform(0.05, 2.0))
        hull = IncrementalConvexHull(zip(times[:-1], values[:-1]))
        t_new, x_new = float(times[-1]), float(values[-1])
        hull.add(t_new, x_new)

        support = [p for p in hull.vertices() if p[0] < t_new]
        expected_upper = min_slope_upper_line(support, t_new, x_new, epsilon)
        expected_lower = max_slope_lower_line(support, t_new, x_new, epsilon)

        upper = min_slope_upper_tangent(*hull.upper_chain(), t_new, x_new, epsilon)
        lower = max_slope_lower_tangent(*hull.lower_chain(), t_new, x_new, epsilon)
        assert upper.slope == expected_upper.slope
        assert upper.intercept == expected_upper.intercept
        assert lower.slope == expected_lower.slope
        assert lower.intercept == expected_lower.intercept

    def test_current_line_competes_exactly_like_list_scan(self):
        hull = IncrementalConvexHull([(0.0, 0.0), (1.0, 0.5), (2.0, 0.0)])
        hull.add(3.0, 0.2)
        chain_t, chain_x = hull.upper_chain()
        flat = Line(-10.0, 100.0)
        assert (
            min_slope_upper_tangent(chain_t, chain_x, 3.0, 0.2, 0.1, current=flat)
            is flat
        )
        steep = Line(+10.0, -100.0)
        kept = min_slope_upper_tangent(chain_t, chain_x, 3.0, 0.2, 0.1, current=steep)
        assert kept is not steep

    def test_no_support_raises_without_current(self):
        chain_t = np.array([5.0])
        chain_x = np.array([1.0])
        with pytest.raises(ValueError):
            min_slope_upper_tangent(chain_t, chain_x, 5.0, 1.0, 0.5)
        with pytest.raises(ValueError):
            max_slope_lower_tangent(chain_t, chain_x, 5.0, 1.0, 0.5)
        current = Line(1.0, 0.0)
        assert (
            min_slope_upper_tangent(chain_t, chain_x, 5.0, 1.0, 0.5, current=current)
            is current
        )


# --------------------------------------------------------------------------- #
# Filter path equivalence (per-point feed vs legacy driver vs kernel path)
# --------------------------------------------------------------------------- #
def reference_batch_class(filter_class):
    """Subclass whose batch hook is the legacy per-point driver."""

    class ReferenceBatch(filter_class):
        def _process_batch(self, times, values):
            StreamFilter._process_batch(self, times, values)

    ReferenceBatch.__name__ = f"Reference{filter_class.__name__}"
    return ReferenceBatch


def run_feed(filter_class, times, values, epsilon, **kwargs):
    instance = filter_class(epsilon, **kwargs)
    for t, v in zip(times, values):
        instance.feed(t, v)
    instance.finish()
    return recording_tuples(instance)


def run_batched(filter_class, times, values, epsilon, chunk_size, **kwargs):
    instance = filter_class(epsilon, **kwargs)
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    for start in range(0, len(times), chunk_size):
        instance.process_batch(
            times[start : start + chunk_size], values[start : start + chunk_size]
        )
    instance.finish()
    return recording_tuples(instance)


def recording_tuples(stream_filter):
    return [
        (r.time, tuple(float(v) for v in r.value), r.kind)
        for r in stream_filter.recordings
    ]


class TestSlidePathEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("connect", [True, False])
    @pytest.mark.parametrize("use_hull", [True, False])
    def test_fuzz_1d(self, seed, connect, use_hull):
        times, values = make_signal(seed=seed * 13 + 1, length=1500)
        epsilon = 0.7 + 0.2 * seed
        kwargs = {"connect_segments": connect, "use_convex_hull": use_hull}
        reference = run_feed(SlideFilter, times, values, epsilon, **kwargs)
        legacy = run_batched(
            reference_batch_class(SlideFilter), times, values, epsilon, 257, **kwargs
        )
        kernel = run_batched(SlideFilter, times, values, epsilon, 257, **kwargs)
        assert legacy == reference
        assert kernel == reference

    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("dims", [2, 3])
    def test_fuzz_multidim(self, seed, dims):
        times, values = make_signal(seed=seed, length=900, dimensions=dims)
        epsilon = [0.5 + 0.3 * i for i in range(dims)]
        reference = run_feed(SlideFilter, times, values, epsilon)
        legacy = run_batched(
            reference_batch_class(SlideFilter), times, values, epsilon, 128
        )
        kernel = run_batched(SlideFilter, times, values, epsilon, 128)
        assert legacy == reference
        assert kernel == reference

    @pytest.mark.parametrize("chunk_size", [1, 23, 4096])
    def test_chunking_invariance(self, chunk_size):
        times, values = make_signal(seed=77, length=1200)
        reference = run_feed(SlideFilter, times, values, 0.9)
        kernel = run_batched(SlideFilter, times, values, 0.9, chunk_size)
        assert kernel == reference

    def test_max_lag_falls_back_to_per_point(self):
        times, values = make_signal(seed=5, length=1000)
        reference = run_feed(SlideFilter, times, values, 0.8, max_lag=11)
        kernel = run_batched(SlideFilter, times, values, 0.8, 401, max_lag=11)
        assert kernel == reference

    @pytest.mark.parametrize("smooth", [True, False])
    def test_smooth_and_noisy_regimes(self, smooth):
        """Both benchmark regimes: long silent runs and dense event clusters."""
        rng = np.random.default_rng(31)
        times = np.arange(4000.0)
        if smooth:
            values = 0.05 * times + rng.normal(0.0, 0.8, 4000)
            epsilon = 8.0
        else:
            values = np.cumsum(rng.normal(0.0, 1.0, 4000))
            epsilon = 1.2
        reference = run_feed(SlideFilter, times, values, epsilon)
        kernel = run_batched(SlideFilter, times, values, epsilon, 512)
        assert kernel == reference

    def test_validation_disabled(self):
        times, values = make_signal(seed=41, length=1200)
        kwargs = {"validate_connections": False}
        reference = run_feed(SlideFilter, times, values, 0.6, **kwargs)
        kernel = run_batched(SlideFilter, times, values, 0.6, 311, **kwargs)
        assert kernel == reference


class TestSwingPathEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("dims", [1, 3])
    def test_fuzz(self, seed, dims):
        times, values = make_signal(seed=seed * 7 + 2, length=1400, dimensions=dims)
        epsilon = 0.8 if dims == 1 else [0.5, 1.0, 0.25]
        reference = run_feed(SwingFilter, times, values, epsilon)
        legacy = run_batched(
            reference_batch_class(SwingFilter), times, values, epsilon, 193
        )
        kernel = run_batched(SwingFilter, times, values, epsilon, 193)
        assert legacy == reference
        assert kernel == reference

    def test_max_lag_falls_back_to_per_point(self):
        times, values = make_signal(seed=9, length=900)
        reference = run_feed(SwingFilter, times, values, 0.7, max_lag=9)
        kernel = run_batched(SwingFilter, times, values, 0.7, 200, max_lag=9)
        assert kernel == reference
