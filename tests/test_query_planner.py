"""Planner-vs-decode equivalence for the block-summary query engine.

The planner (:mod:`repro.queries.planner`) must answer every aggregate query
identically to the reference decode path — ``store.read`` →
``reconstruct`` → the in-memory aggregates — within
:data:`~repro.queries.planner.TOLERANCE`.  These tests fuzz that contract
over random signals, filters, block sizes and query ranges (inside, across
and outside the stream span, window edges on and straddling block
boundaries), and pin down the structural properties: seed-format catalogs
are backfilled lazily, boundary straddles decode at most two blocks per
range, live tails merge exactly like a seal-then-read, and sharded stores
answer like plain ones.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.session import StreamDB
from repro.approximation.reconstruct import reconstruct
from repro.core.registry import create_filter
from repro.queries.aggregates import range_aggregate, resample, window_aggregates
from repro.queries.planner import (
    PlannerFallback,
    StreamQueryPlan,
    plan_range_aggregate,
    plan_resample,
    plan_window_aggregates,
)
from repro.storage import SegmentStore, ShardedStore

REL = 1e-9
ABS = 1e-9

FIELDS = ("minimum", "maximum", "mean", "integral")


def make_recordings(filter_name, seed, points=1500, epsilon=0.5):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(0.2, 1.5, points))
    values = np.cumsum(rng.normal(0.0, 1.0, points)).reshape(-1, 1)
    filt = create_filter(filter_name, epsilon)
    recordings = filt.process_batch(times, values)
    recordings += filt.finish()
    return recordings


def fill_store(tmp_path, filter_name, seed, block_records=8, points=1500):
    store = SegmentStore(tmp_path / f"{filter_name}-{seed}", block_records=block_records)
    store.append("s", make_recordings(filter_name, seed, points))
    store.flush()
    return store


def reference_range(store, name, a, b, dimension=0):
    return range_aggregate(reconstruct(store.read(name, a, b)), a, b, dimension=dimension)


def assert_close(got, ref):
    for field in FIELDS:
        assert getattr(got, field) == pytest.approx(getattr(ref, field), rel=REL, abs=ABS)


class TestPlannerEquivalence:
    @pytest.mark.parametrize("filter_name", ["slide", "swing", "cache"])
    @pytest.mark.parametrize("block_records", [8, 16])
    def test_random_ranges_match_decode(self, tmp_path, filter_name, block_records):
        store = fill_store(tmp_path, filter_name, seed=7, block_records=block_records)
        plan = StreamQueryPlan(store, "s")
        lo, hi = plan.time_bounds()
        rng = np.random.default_rng(11)
        for _ in range(120):
            a = rng.uniform(lo - 40.0, hi + 40.0)
            b = a + rng.uniform(0.0, (hi - lo) * 1.1)
            try:
                ref = reference_range(store, "s", a, b)
                ref_error = None
            except ValueError:
                ref, ref_error = None, True
            try:
                got = plan_range_aggregate(store, "s", a, b, min_blocks=0)
                got_error = None
            except ValueError:
                got, got_error = None, True
            assert got_error == ref_error, (a, b)
            if ref is not None:
                assert_close(got, ref)

    @pytest.mark.parametrize("filter_name", ["slide", "cache"])
    def test_windows_match_decode(self, tmp_path, filter_name):
        store = fill_store(tmp_path, filter_name, seed=3)
        plan = StreamQueryPlan(store, "s")
        lo, hi = plan.time_bounds()
        approximation = reconstruct(store.read("s"))
        for window in ((hi - lo) / 7, (hi - lo) / 31, 13.7):
            got = plan_window_aggregates(store, "s", window, min_blocks=0)
            ref = window_aggregates(approximation, lo, hi, window)
            assert len(got) == len(ref)
            for g, r in zip(got, ref):
                assert g.start == r.start and g.end == r.end
                assert_close(g, r)

    def test_window_edges_on_block_boundaries(self, tmp_path):
        """Windows whose edges sit exactly on block piece-span boundaries."""
        store = fill_store(tmp_path, "slide", seed=19)
        blocks = store.summary_range("s")
        # Edges on block min/max times: the straddle/containment split flips.
        for block in blocks[2:10]:
            a, b = float(block[2]), float(block[3])
            if b <= a:
                continue
            got = plan_range_aggregate(store, "s", a, b, min_blocks=0)
            assert_close(got, reference_range(store, "s", a, b))

    def test_zero_duration_pieces(self, tmp_path):
        """Isolated transmitted points (zero-length segments) aggregate alike."""
        rng = np.random.default_rng(5)
        # A signal alternating smooth stretches with large isolated jumps
        # produces SEGMENT_START/SEGMENT_START pairs (zero-length pieces).
        times = np.cumsum(rng.uniform(0.5, 1.0, 600))
        values = np.cumsum(rng.normal(0.0, 0.2, 600))
        values[::37] += rng.normal(0.0, 60.0, len(values[::37]))
        filt = create_filter("slide", 0.25)
        recordings = filt.process_batch(times, values.reshape(-1, 1))
        recordings += filt.finish()
        store = SegmentStore(tmp_path / "zeros", block_records=8)
        store.append("s", recordings)
        store.flush()
        plan = StreamQueryPlan(store, "s")
        lo, hi = plan.time_bounds()
        for _ in range(60):
            a = rng.uniform(lo - 10.0, hi + 10.0)
            b = a + rng.uniform(0.0, (hi - lo) / 2)
            try:
                ref = reference_range(store, "s", a, b)
            except ValueError:
                with pytest.raises(ValueError):
                    plan_range_aggregate(store, "s", a, b, min_blocks=0)
                continue
            assert_close(plan_range_aggregate(store, "s", a, b, min_blocks=0), ref)

    def test_ranges_fully_outside_span(self, tmp_path):
        store = fill_store(tmp_path, "cache", seed=23)
        lo, hi = StreamQueryPlan(store, "s").time_bounds()
        for a, b in ((lo - 30.0, lo - 5.0), (hi + 5.0, hi + 30.0), (lo - 10.0, hi + 10.0)):
            got = plan_range_aggregate(store, "s", a, b, min_blocks=0)
            assert_close(got, reference_range(store, "s", a, b))

    def test_resample_matches_decode(self, tmp_path):
        store = fill_store(tmp_path, "swing", seed=29)
        lo, hi = StreamQueryPlan(store, "s").time_bounds()
        got_times, got_values = plan_resample(store, "s", 2.5)
        approximation = reconstruct(store.read("s"))
        ref_times, ref_values = resample(approximation, lo, hi, 2.5)
        np.testing.assert_allclose(got_times, ref_times)
        np.testing.assert_allclose(got_values, ref_values, rtol=REL, atol=ABS)
        assert got_times[-1] <= hi

    def test_sharded_store_matches_plain(self, tmp_path):
        recordings = make_recordings("slide", seed=31)
        plain = SegmentStore(tmp_path / "plain", block_records=8)
        sharded = ShardedStore(tmp_path / "sharded", shards=3, block_records=8)
        for target in (plain, sharded):
            target.append("s", recordings)
            target.flush()
        lo, hi = StreamQueryPlan(plain, "s").time_bounds()
        rng = np.random.default_rng(37)
        for _ in range(25):
            a = rng.uniform(lo, hi - 1.0)
            b = a + rng.uniform(1.0, (hi - lo) / 3)
            assert_close(
                plan_range_aggregate(sharded, "s", a, b, min_blocks=0),
                plan_range_aggregate(plain, "s", a, b, min_blocks=0),
            )


class TestPlannerStructure:
    def test_boundary_straddle_decodes_at_most_two_blocks(self, tmp_path, monkeypatch):
        store = fill_store(tmp_path, "swing", seed=41, points=3000)
        plan = StreamQueryPlan(store, "s")
        lo, hi = plan.time_bounds()
        decodes = []
        original = SegmentStore.read_block_arrays

        def counting(self, name, lo_block, hi_block):
            decodes.append((lo_block, hi_block))
            return original(self, name, lo_block, hi_block)

        monkeypatch.setattr(SegmentStore, "read_block_arrays", counting)
        rng = np.random.default_rng(43)
        block_count = len(store.summary_range("s"))
        assert block_count >= 100
        for _ in range(50):
            a = rng.uniform(lo, hi - 1.0)
            b = a + rng.uniform(1.0, (hi - lo) / 4)
            before = len(decodes)
            plan.range_aggregate(a, b)
            spent = sum(h - l for l, h in decodes[before:])
            assert spent <= 2 + 2  # boundary clips + head-piece resolution

    def test_fast_path_answers_without_reference(self, tmp_path, monkeypatch):
        """Interior ranges never fall back to the decode path."""
        store = fill_store(tmp_path, "slide", seed=47)
        plan = StreamQueryPlan(store, "s")
        lo, hi = plan.time_bounds()

        import repro.queries.planner as planner_module

        def forbid(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("planner fell back to the decode path")

        monkeypatch.setattr(planner_module, "_reference_recordings", forbid)
        rng = np.random.default_rng(53)
        for _ in range(40):
            a = rng.uniform(lo, hi - 1.0)
            b = a + rng.uniform(0.5, (hi - lo) / 3)
            ref = reference_range(store, "s", a, b)
            assert_close(plan_range_aggregate(store, "s", a, b, min_blocks=0), ref)

    def test_seed_format_catalog_is_backfilled(self, tmp_path):
        """4-element blocks (no summaries) gain them lazily and answer right."""
        store = fill_store(tmp_path, "slide", seed=59)
        catalog_path = store.directory / "catalog.json"
        payload = json.loads(catalog_path.read_text())
        for entry in payload["streams"]:
            entry["blocks"] = [block[:4] for block in entry["blocks"]]
        payload["version"] = 2
        catalog_path.write_text(json.dumps(payload))

        reopened = SegmentStore(store.directory)
        assert all(block[4] is None for block in reopened.describe("s").blocks)
        lo, hi = StreamQueryPlan(reopened, "s").time_bounds()  # triggers backfill
        blocks = reopened.summary_range("s")
        assert all(block[4] is not None for block in blocks)
        a, b = lo + (hi - lo) / 5, hi - (hi - lo) / 5
        assert_close(
            plan_range_aggregate(reopened, "s", a, b, min_blocks=0),
            reference_range(reopened, "s", a, b),
        )

    def test_unsupported_stream_falls_back(self, tmp_path, monkeypatch):
        """A plan over a summary-less stream raises; plan_* still answers."""
        from repro.storage.backends.block_log import BlockLogBackend

        store = fill_store(tmp_path, "slide", seed=61)
        lo, hi = StreamQueryPlan(store, "s").time_bounds()
        entry = store.describe("s")
        for block in entry.blocks:
            block[4] = None
        # With backfill disabled the summaries stay gone: the plan refuses...
        monkeypatch.setattr(BlockLogBackend, "ensure_summaries", lambda *a, **k: False)
        with pytest.raises(PlannerFallback):
            StreamQueryPlan(store, "s")
        # ...and the public entry points answer via the decode path.
        a, b = lo + 3.0, hi - 3.0
        assert_close(
            plan_range_aggregate(store, "s", a, b, min_blocks=0),
            reference_range(store, "s", a, b),
        )

    def test_min_blocks_guard_falls_back(self, tmp_path):
        """Tiny streams answer via decode (still correct) under the default."""
        store = SegmentStore(tmp_path / "tiny", block_records=512)
        store.append("s", make_recordings("slide", seed=67, points=60))
        store.flush()
        assert len(store.describe("s").blocks) < 4
        lo, hi = StreamQueryPlan(store, "s").time_bounds()
        a, b = lo + 1.0, hi - 1.0
        assert_close(
            plan_range_aggregate(store, "s", a, b),
            reference_range(store, "s", a, b),
        )


class TestLiveMerge:
    def test_live_tail_matches_seal_then_read(self, tmp_path):
        """session.aggregate over a live stream == seal + stored aggregate."""
        from repro.api.specs import FilterSpec, StorageSpec

        rng = np.random.default_rng(71)
        times = np.cumsum(rng.uniform(0.2, 1.0, 2000))
        values = np.cumsum(rng.normal(0.0, 1.0, 2000)).reshape(-1, 1)
        spec = dict(
            filter=FilterSpec("slide", epsilon=0.5),
            storage=StorageSpec(block_records=8),
        )
        with StreamDB(tmp_path / "db-live", **spec) as live_db:
            live_db.append("s", times, values)
            # The filter still holds in-flight state: queries must see it.
            live_windows = live_db.aggregate("s", window=25.0)
            live_total = live_db.aggregate("s")
            grid = live_db.resample("s", 7.3)
        with StreamDB(tmp_path / "db-sealed", **spec) as sealed_db:
            sealed_db.append("s", times, values)
            sealed_db.seal("s")
            sealed_windows = sealed_db.aggregate("s", window=25.0)
            sealed_total = sealed_db.aggregate("s")
            sealed_grid = sealed_db.resample("s", 7.3)
        assert_close(live_total, sealed_total)
        assert len(live_windows) == len(sealed_windows)
        for live_one, sealed_one in zip(live_windows, sealed_windows):
            assert_close(live_one, sealed_one)
        np.testing.assert_allclose(grid[0], sealed_grid[0])
        np.testing.assert_allclose(grid[1], sealed_grid[1], rtol=REL, atol=ABS)

    def test_plan_accepts_explicit_tail(self, tmp_path):
        """A tail passed to the planner aggregates as if it were appended."""
        recordings = make_recordings("slide", seed=73)
        split = len(recordings) - 7
        stored, tail = recordings[:split], recordings[split:]
        store = SegmentStore(tmp_path / "tail", block_records=8)
        store.append("s", stored)
        store.flush()
        full = SegmentStore(tmp_path / "full", block_records=8)
        full.append("s", recordings)
        full.flush()
        lo, hi = StreamQueryPlan(full, "s").time_bounds()
        a, b = lo + 2.0, hi - 0.5
        got = plan_range_aggregate(store, "s", a, b, tail=tail, min_blocks=0)
        assert_close(got, reference_range(full, "s", a, b))
