"""Unit tests for :mod:`repro.core.epsilon`."""

import numpy as np
import pytest

from repro.core.epsilon import ErrorBound, epsilon_from_percent
from repro.core.errors import InvalidPrecisionError


class TestErrorBound:
    def test_uniform(self):
        bound = ErrorBound.uniform(0.5, dimensions=3)
        assert bound.dimensions == 3
        assert list(bound) == [0.5, 0.5, 0.5]

    def test_of_scalar_broadcast(self):
        bound = ErrorBound.of(1.5, dimensions=4)
        assert bound.dimensions == 4
        assert bound.component(3) == 1.5

    def test_of_vector_checked(self):
        bound = ErrorBound.of([1.0, 2.0], dimensions=2)
        assert bound.component(1) == 2.0
        with pytest.raises(InvalidPrecisionError):
            ErrorBound.of([1.0, 2.0], dimensions=3)

    def test_of_passthrough(self):
        original = ErrorBound.uniform(0.1, 2)
        assert ErrorBound.of(original, 2) is original

    def test_negative_rejected(self):
        with pytest.raises(InvalidPrecisionError):
            ErrorBound(np.array([-0.1]))

    def test_nan_rejected(self):
        with pytest.raises(InvalidPrecisionError):
            ErrorBound(np.array([float("nan")]))

    def test_infinite_rejected(self):
        with pytest.raises(InvalidPrecisionError):
            ErrorBound(np.array([float("inf")]))

    def test_empty_rejected(self):
        with pytest.raises(InvalidPrecisionError):
            ErrorBound(np.array([]))

    def test_zero_allowed(self):
        bound = ErrorBound.uniform(0.0, 1)
        assert bound.component(0) == 0.0

    def test_matrix_rejected(self):
        with pytest.raises(InvalidPrecisionError):
            ErrorBound(np.ones((2, 2)))

    def test_zero_dimensions_rejected(self):
        with pytest.raises(InvalidPrecisionError):
            ErrorBound.uniform(1.0, dimensions=0)

    def test_satisfied_by(self):
        bound = ErrorBound(np.array([1.0, 2.0]))
        assert bound.satisfied_by(np.array([0.5, -1.5]))
        assert not bound.satisfied_by(np.array([1.5, 0.0]))
        assert bound.satisfied_by(np.array([1.5, 0.0]), slack=0.6)

    def test_as_array_is_copy(self):
        bound = ErrorBound.uniform(1.0, 2)
        array = bound.as_array()
        array[0] = 99.0
        assert bound.component(0) == 1.0

    def test_len(self):
        assert len(ErrorBound.uniform(1.0, 5)) == 5


class TestFromPercent:
    def test_from_percent_of_range_single_dimension(self):
        values = np.array([0.0, 10.0, 5.0])
        bound = ErrorBound.from_percent_of_range(10.0, values)
        assert bound.component(0) == pytest.approx(1.0)

    def test_from_percent_of_range_per_dimension(self):
        values = np.array([[0.0, 0.0], [10.0, 100.0]])
        bound = ErrorBound.from_percent_of_range(1.0, values)
        assert bound.component(0) == pytest.approx(0.1)
        assert bound.component(1) == pytest.approx(1.0)

    def test_from_percent_global_range(self):
        values = np.array([[0.0, 0.0], [10.0, 100.0]])
        bound = ErrorBound.from_percent_of_range(1.0, values, per_dimension=False)
        assert bound.component(0) == pytest.approx(1.0)
        assert bound.component(1) == pytest.approx(1.0)

    def test_from_percent_empty_rejected(self):
        with pytest.raises(InvalidPrecisionError):
            ErrorBound.from_percent_of_range(1.0, np.array([]))

    def test_epsilon_from_percent_helper(self):
        values = [20.5, 24.5]
        assert epsilon_from_percent(10.0, values) == pytest.approx(0.4)

    def test_epsilon_from_percent_empty(self):
        with pytest.raises(InvalidPrecisionError):
            epsilon_from_percent(1.0, [])
