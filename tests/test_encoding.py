"""Tests for the binary recording codec."""

import numpy as np
import pytest

from repro.approximation.encoding import (
    byte_compression_ratio,
    decode_recordings,
    encode_recordings,
    encoded_size_bytes,
    raw_size_bytes,
)
from repro.core.swing import SwingFilter
from repro.core.types import Recording, RecordingKind


class TestRoundTrip:
    def test_empty(self):
        payload = encode_recordings([])
        assert decode_recordings(payload) == []

    def test_single_recording(self):
        original = [Recording(1.5, [2.0, 3.0], RecordingKind.SEGMENT_START)]
        decoded = decode_recordings(encode_recordings(original))
        assert len(decoded) == 1
        assert decoded[0].time == 1.5
        assert decoded[0].kind is RecordingKind.SEGMENT_START
        assert np.allclose(decoded[0].value, [2.0, 3.0])

    def test_all_kinds_round_trip(self):
        original = [
            Recording(0.0, 1.0, RecordingKind.SEGMENT_START),
            Recording(1.0, 2.0, RecordingKind.SEGMENT_END),
            Recording(2.0, 3.0, RecordingKind.HOLD),
        ]
        decoded = decode_recordings(encode_recordings(original))
        assert [r.kind for r in decoded] == [r.kind for r in original]
        assert [r.time for r in decoded] == [0.0, 1.0, 2.0]

    def test_filter_result_round_trip(self):
        result = SwingFilter(0.5).process([(float(t), float(t) * 0.1) for t in range(50)])
        decoded = decode_recordings(encode_recordings(result))
        assert len(decoded) == result.recording_count
        for a, b in zip(decoded, result.recordings):
            assert a.time == b.time
            assert np.allclose(a.value, b.value)

    def test_mixed_dimensions_rejected(self):
        records = [
            Recording(0.0, 1.0, RecordingKind.HOLD),
            Recording(1.0, [1.0, 2.0], RecordingKind.HOLD),
        ]
        with pytest.raises(ValueError):
            encode_recordings(records)


class TestSizes:
    def test_encoded_size_grows_with_recordings(self):
        one = encoded_size_bytes([Recording(0.0, 1.0, RecordingKind.HOLD)])
        two = encoded_size_bytes(
            [Recording(0.0, 1.0, RecordingKind.HOLD), Recording(1.0, 2.0, RecordingKind.HOLD)]
        )
        assert two > one

    def test_raw_size(self):
        assert raw_size_bytes(10, 1) == 10 * 16
        assert raw_size_bytes(10, 3) == 10 * 32

    def test_raw_size_validation(self):
        with pytest.raises(ValueError):
            raw_size_bytes(-1, 1)

    def test_byte_compression_ratio_greater_than_one_for_compressible_signal(self):
        times = np.arange(200.0)
        values = 0.5 * times
        result = SwingFilter(0.1).process(zip(times, values))
        ratio = byte_compression_ratio(result, point_count=200, dimensions=1)
        assert ratio > 10.0
