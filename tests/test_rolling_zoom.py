"""Rolling-window and zoom-pyramid parity against the decode path.

The second act of the query engine — the incremental rolling-window
composer (:meth:`StreamQueryPlan.window_aggregates` with a ``step``), the
multi-resolution zoom pyramid (:mod:`repro.queries.pyramid` over
:func:`repro.storage.summaries.build_pyramid`) and the warm-started tangent
searches — must agree with the reference decode path within the documented
1e-9 tolerance.  These tests fuzz that contract across filters, shard
counts, step/width ratios and live-tail merges, and pin the structural
guarantees: zoom answers are budget-bounded and decode at most the two
viewport-cut blocks, pyramid levels survive append/compact/truncate
round-trips bit-identically to a cold rebuild, and lazy summary backfill
persists exactly once and never writes through a read path.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api.session import StreamDB
from repro.api.specs import FilterSpec, StorageSpec
from repro.approximation.reconstruct import reconstruct
from repro.core.registry import create_filter
from repro.queries.aggregates import _segments_of, clip_aggregate, window_aggregates
from repro.queries.planner import StreamQueryPlan, plan_window_aggregates
from repro.queries.pyramid import plan_zoom, zoom_cells
from repro.storage import SegmentStore, ShardedStore
from repro.storage.summaries import PYRAMID_BASE, block_cells, build_pyramid

REL = 1e-9
ABS = 1e-9

FIELDS = ("minimum", "maximum", "mean", "integral")


def make_recordings(filter_name, seed, points=1500, epsilon=0.5):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(0.2, 1.5, points))
    values = np.cumsum(rng.normal(0.0, 1.0, points)).reshape(-1, 1)
    filt = create_filter(filter_name, epsilon)
    recordings = filt.process_batch(times, values)
    recordings += filt.finish()
    return recordings


def fill_store(tmp_path, filter_name, seed, block_records=8, points=1500):
    store = SegmentStore(tmp_path / f"{filter_name}-{seed}", block_records=block_records)
    store.append("s", make_recordings(filter_name, seed, points))
    store.flush()
    return store


def assert_close(got, ref):
    for field in FIELDS:
        assert getattr(got, field) == pytest.approx(getattr(ref, field), rel=REL, abs=ABS)


def decoded_pieces(store, name, dimension=0):
    return _segments_of(reconstruct(store.read(name)), dimension)


def assert_zoom_exact(cells, pieces, start, end, max_points):
    """The zoom contract: per-cell parity, completeness, ordering, budget."""
    t0, x0, t1, x1 = pieces
    assert len(cells) <= max_points
    for cell in cells:
        minimum, maximum, area, covered = clip_aggregate(
            t0, x0, t1, x1, cell.start, cell.end
        )
        assert cell.minimum == pytest.approx(minimum, rel=REL, abs=ABS), cell
        assert cell.maximum == pytest.approx(maximum, rel=REL, abs=ABS), cell
        assert cell.integral == pytest.approx(area, rel=REL, abs=ABS), cell
        assert cell.covered == pytest.approx(covered, rel=REL, abs=ABS), cell
    for left, right in zip(cells, cells[1:]):
        assert left.end <= right.start + ABS
    # Completeness: the cells jointly account for every piece of signal in
    # the viewport — a dropped inter-block bridge would break these sums.
    _, _, total_area, total_covered = clip_aggregate(t0, x0, t1, x1, start, end)
    assert sum(cell.integral for cell in cells) == pytest.approx(
        total_area, rel=REL, abs=ABS
    )
    assert sum(cell.covered for cell in cells) == pytest.approx(
        total_covered, rel=REL, abs=ABS
    )


# --------------------------------------------------------------------------- #
# Rolling windows
# --------------------------------------------------------------------------- #
class TestRollingParity:
    @pytest.mark.parametrize("filter_name", ["slide", "swing", "cache"])
    @pytest.mark.parametrize("ratio", [0.25, 0.5, 1.0, 1.7])
    def test_rolling_matches_decode(self, tmp_path, filter_name, ratio):
        store = fill_store(tmp_path, filter_name, seed=7)
        lo, hi = StreamQueryPlan(store, "s").time_bounds()
        window = (hi - lo) / 37
        step = window * ratio
        got = plan_window_aggregates(store, "s", window, step=step, min_blocks=0)
        ref = window_aggregates(reconstruct(store.read("s")), lo, hi, window, step=step)
        assert len(got) == len(ref)
        for g, r in zip(got, ref):
            assert g.start == r.start and g.end == r.end
            assert_close(g, r)

    def test_rolling_fuzz_ranges_and_ratios(self, tmp_path):
        store = fill_store(tmp_path, "slide", seed=13)
        lo, hi = StreamQueryPlan(store, "s").time_bounds()
        rng = np.random.default_rng(17)
        for _ in range(40):
            a = rng.uniform(lo - 20.0, hi - 30.0)
            b = a + rng.uniform(10.0, (hi - lo) * 1.1)
            window = rng.uniform(1.0, (b - a) / 3)
            step = window * rng.uniform(0.1, 2.5)
            got = plan_window_aggregates(
                store, "s", window, a, b, step=step, min_blocks=0
            )
            ref = window_aggregates(
                reconstruct(store.read("s", a, b)), a, b, window, step=step
            )
            assert len(got) == len(ref), (a, b, window, step)
            for g, r in zip(got, ref):
                assert_close(g, r)

    def test_rolling_never_falls_back_on_interior(self, tmp_path, monkeypatch):
        store = fill_store(tmp_path, "swing", seed=19)
        lo, hi = StreamQueryPlan(store, "s").time_bounds()
        ref = window_aggregates(
            reconstruct(store.read("s")), lo, hi, 25.0, step=7.0
        )

        import repro.queries.planner as planner_module

        def forbid(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("rolling composer fell back to the decode path")

        monkeypatch.setattr(planner_module, "_reference_recordings", forbid)
        got = plan_window_aggregates(store, "s", 25.0, step=7.0, min_blocks=0)
        assert len(got) == len(ref)
        for g, r in zip(got, ref):
            assert_close(g, r)

    @pytest.mark.parametrize("shards", [2, 3])
    def test_sharded_matches_plain(self, tmp_path, shards):
        recordings = make_recordings("slide", seed=23)
        plain = SegmentStore(tmp_path / "plain", block_records=8)
        sharded = ShardedStore(tmp_path / "sharded", shards=shards, block_records=8)
        for target in (plain, sharded):
            target.append("s", recordings)
            target.flush()
        plain_windows = plan_window_aggregates(plain, "s", 40.0, step=11.0, min_blocks=0)
        sharded_windows = plan_window_aggregates(
            sharded, "s", 40.0, step=11.0, min_blocks=0
        )
        assert len(plain_windows) == len(sharded_windows)
        for g, r in zip(sharded_windows, plain_windows):
            assert_close(g, r)

    def test_live_tail_matches_seal_then_read(self, tmp_path):
        rng = np.random.default_rng(29)
        times = np.cumsum(rng.uniform(0.2, 1.0, 2000))
        values = np.cumsum(rng.normal(0.0, 1.0, 2000)).reshape(-1, 1)
        spec = dict(
            filter=FilterSpec("slide", epsilon=0.5),
            storage=StorageSpec(block_records=8),
        )
        with StreamDB(tmp_path / "db-live", **spec) as live_db:
            live_db.append("s", times, values)
            live = live_db.aggregate("s", window=25.0, step=6.0)
        with StreamDB(tmp_path / "db-sealed", **spec) as sealed_db:
            sealed_db.append("s", times, values)
            sealed_db.seal("s")
            sealed = sealed_db.aggregate("s", window=25.0, step=6.0)
        assert len(live) == len(sealed)
        for live_one, sealed_one in zip(live, sealed):
            assert live_one.start == sealed_one.start
            assert_close(live_one, sealed_one)

    def test_step_requires_window(self, tmp_path):
        spec = dict(filter=FilterSpec("slide", epsilon=0.5))
        with StreamDB(tmp_path / "db", **spec) as db:
            db.append("s", np.arange(10.0), np.zeros((10, 1)))
            with pytest.raises(ValueError):
                db.aggregate("s", step=5.0)


# --------------------------------------------------------------------------- #
# Zoom pyramid
# --------------------------------------------------------------------------- #
class TestZoomParity:
    @pytest.mark.parametrize("filter_name", ["slide", "swing", "cache"])
    @pytest.mark.parametrize("max_points", [4, 6, 30, 1000])
    def test_zoom_matches_decode(self, tmp_path, filter_name, max_points):
        store = fill_store(tmp_path, filter_name, seed=31)
        lo, hi = StreamQueryPlan(store, "s").time_bounds()
        pieces = decoded_pieces(store, "s")
        span = hi - lo
        viewports = [
            (lo + span / 3, lo + 2 * span / 3),
            (lo, hi),
            (lo + span / 2, lo + span / 2 + 50.0),
            (lo - 100.0, hi + 100.0),
        ]
        for start, end in viewports:
            cells = plan_zoom(store, "s", start, end, max_points=max_points)
            assert_zoom_exact(cells, pieces, start, end, max_points)

    def test_zoom_fuzz_viewports(self, tmp_path):
        store = fill_store(tmp_path, "slide", seed=37, points=2500)
        lo, hi = StreamQueryPlan(store, "s").time_bounds()
        pieces = decoded_pieces(store, "s")
        rng = np.random.default_rng(41)
        for _ in range(30):
            start = rng.uniform(lo - 30.0, hi - 10.0)
            end = start + rng.uniform(5.0, (hi - lo) * 1.2)
            max_points = int(rng.integers(4, 200))
            cells = plan_zoom(store, "s", start, end, max_points=max_points)
            assert_zoom_exact(cells, pieces, start, end, max_points)

    def test_zoom_decodes_at_most_the_cut_blocks(self, tmp_path, monkeypatch):
        store = fill_store(tmp_path, "swing", seed=43, points=4000)
        lo, hi = StreamQueryPlan(store, "s").time_bounds()
        assert len(store.summary_range("s")) >= 150
        store.pyramid_levels("s")  # build once, outside the counted section
        decodes = []
        original = SegmentStore.read_block_arrays

        def counting(self, name, lo_block, hi_block):
            decodes.append((lo_block, hi_block))
            return original(self, name, lo_block, hi_block)

        monkeypatch.setattr(SegmentStore, "read_block_arrays", counting)
        rng = np.random.default_rng(47)
        for _ in range(20):
            start = rng.uniform(lo, hi - 10.0)
            end = start + rng.uniform(5.0, (hi - lo) / 2)
            before = len(decodes)
            plan_zoom(store, "s", start, end, max_points=100)
            spent = sum(h - l for l, h in decodes[before:])
            # Only the two blocks the viewport edges cut may decode (plus
            # head-piece resolution); fully-covered interior blocks must
            # answer from their summaries.
            assert spent <= 4, (start, end, decodes[before:])

    @pytest.mark.parametrize("shards", [2, 3])
    def test_sharded_zoom_matches_plain(self, tmp_path, shards):
        recordings = make_recordings("cache", seed=53)
        plain = SegmentStore(tmp_path / "plain", block_records=8)
        sharded = ShardedStore(tmp_path / "sharded", shards=shards, block_records=8)
        for target in (plain, sharded):
            target.append("s", recordings)
            target.flush()
        lo, hi = StreamQueryPlan(plain, "s").time_bounds()
        start, end = lo + (hi - lo) / 4, hi - (hi - lo) / 4
        plain_cells = plan_zoom(plain, "s", start, end, max_points=40)
        sharded_cells = plan_zoom(sharded, "s", start, end, max_points=40)
        assert len(plain_cells) == len(sharded_cells)
        for got, ref in zip(sharded_cells, plain_cells):
            assert got == ref

    def test_live_tail_zoom_matches_sealed(self, tmp_path):
        rng = np.random.default_rng(59)
        times = np.cumsum(rng.uniform(0.2, 1.0, 2000))
        values = np.cumsum(rng.normal(0.0, 1.0, 2000)).reshape(-1, 1)
        spec = dict(
            filter=FilterSpec("slide", epsilon=0.5),
            storage=StorageSpec(block_records=8),
        )
        with StreamDB(tmp_path / "db-live", **spec) as live_db:
            live_db.append("s", times, values)
            live = live_db.zoom("s", max_points=48)
        with StreamDB(tmp_path / "db-sealed", **spec) as sealed_db:
            sealed_db.append("s", times, values)
            sealed_db.seal("s")
            sealed = sealed_db.zoom("s", max_points=48)
        # The live tail widens the finest level by one cell at most; both
        # views must describe the same signal cell for cell.
        assert len(live) == len(sealed)
        for live_cell, sealed_cell in zip(live, sealed):
            for field in ("start", "end", "minimum", "maximum", "integral", "covered"):
                assert getattr(live_cell, field) == pytest.approx(
                    getattr(sealed_cell, field), rel=REL, abs=ABS
                )

    def test_summaryless_store_falls_back(self, tmp_path, monkeypatch):
        from repro.storage.backends.block_log import BlockLogBackend

        store = fill_store(tmp_path, "slide", seed=61)
        lo, hi = StreamQueryPlan(store, "s").time_bounds()
        pieces = decoded_pieces(store, "s")
        entry = store.describe("s")
        for block in entry.blocks:
            block[4] = None
        entry.pyramid = None
        monkeypatch.setattr(BlockLogBackend, "ensure_summaries", lambda *a, **k: False)
        cells = plan_zoom(store, "s", lo, hi, max_points=32)
        assert cells and all(cell.level == -1 for cell in cells)
        assert_zoom_exact(cells, pieces, lo, hi, 32)

    def test_zoom_budget_validation(self, tmp_path):
        store = fill_store(tmp_path, "slide", seed=67, points=200)
        with pytest.raises(ValueError):
            plan_zoom(store, "s", max_points=3)
        lo, hi = StreamQueryPlan(store, "s").time_bounds()
        with pytest.raises(ValueError):
            plan_zoom(store, "s", hi, lo, max_points=16)


# --------------------------------------------------------------------------- #
# Pyramid lifecycle
# --------------------------------------------------------------------------- #
def canonical(pyramid):
    return json.dumps(pyramid, sort_keys=True)


class TestPyramidLifecycle:
    def test_incremental_append_matches_cold_rebuild(self, tmp_path):
        recordings = make_recordings("slide", seed=71, points=3000)
        store = SegmentStore(tmp_path / "inc", block_records=8)
        for position in range(0, len(recordings), 97):
            store.append("s", recordings[position : position + 97])
            store.pyramid_levels("s")  # force incremental maintenance
        store.flush()
        incremental = store.pyramid_levels("s")
        cold = build_pyramid(block_cells(store.describe("s").blocks))
        assert canonical(incremental) == canonical(cold)
        # Structural invariants: levels shrink by the fold base, top is 1.
        sizes = [len(level) for level in incremental]
        assert sizes[-1] == 1
        for finer, coarser in zip(sizes, sizes[1:]):
            assert coarser == -(-finer // PYRAMID_BASE)

    def test_pyramid_survives_reopen(self, tmp_path):
        store = fill_store(tmp_path, "swing", seed=73, points=2000)
        built = store.pyramid_levels("s")
        store.flush()
        reopened = SegmentStore(store.directory)
        assert reopened.describe("s").pyramid is not None
        assert canonical(reopened.pyramid_levels("s")) == canonical(built)

    def test_truncate_and_compact_rebuild_identically(self, tmp_path):
        store = fill_store(tmp_path, "slide", seed=79, points=2500)
        store.pyramid_levels("s")
        store.truncate_stream("s", keep_records=300)
        after_truncate = store.pyramid_levels("s")
        cold = build_pyramid(block_cells(store.describe("s").blocks))
        assert canonical(after_truncate) == canonical(cold)
        store.compact("s")
        after_compact = store.pyramid_levels("s")
        cold = build_pyramid(block_cells(store.describe("s").blocks))
        assert canonical(after_compact) == canonical(cold)

    def test_legacy_catalog_without_pyramid_upgrades(self, tmp_path):
        store = fill_store(tmp_path, "cache", seed=83, points=2000)
        built = canonical(store.pyramid_levels("s"))
        store.flush()
        catalog_path = store.directory / "catalog.json"
        payload = json.loads(catalog_path.read_text())
        for entry in payload["streams"]:
            entry.pop("pyramid", None)
        payload["version"] = 3
        catalog_path.write_text(json.dumps(payload))
        reopened = SegmentStore(store.directory)
        assert reopened.describe("s").pyramid is None
        assert canonical(reopened.pyramid_levels("s")) == built


# --------------------------------------------------------------------------- #
# Lazy summary backfill (ensure_summaries)
# --------------------------------------------------------------------------- #
def strip_summaries_on_disk(store):
    """Rewrite the catalog as a seed-format (summary-less, v2) one."""
    catalog_path = store.directory / "catalog.json"
    if not catalog_path.exists():  # empty shard: nothing to strip
        return
    payload = json.loads(catalog_path.read_text())
    for entry in payload["streams"]:
        entry["blocks"] = [block[:4] for block in entry["blocks"]]
        entry.pop("pyramid", None)
    payload["version"] = 2
    catalog_path.write_text(json.dumps(payload))


@pytest.fixture
def flush_counter(monkeypatch):
    """Count catalog writes (flushes that actually persist)."""
    writes = []
    original = SegmentStore.flush

    def counting(self):
        if self._dirty:
            writes.append(self.directory)
        original(self)

    monkeypatch.setattr(SegmentStore, "flush", counting)
    return writes


class TestSummaryBackfill:
    def test_autoflush_store_persists_exactly_once(self, tmp_path, flush_counter):
        store = fill_store(tmp_path, "slide", seed=89)
        strip_summaries_on_disk(store)
        reopened = SegmentStore(store.directory)
        del flush_counter[:]
        reopened.summary_range("s")  # triggers the backfill
        assert len(flush_counter) == 1
        reopened.summary_range("s")  # already summarized: no further writes
        reopened.pyramid_levels("s")
        backfill_writes = len(flush_counter)
        reopened.summary_range("s")
        reopened.pyramid_levels("s")
        assert len(flush_counter) == backfill_writes

    def test_autoflush_off_persists_on_explicit_flush(self, tmp_path, flush_counter):
        store = fill_store(tmp_path, "slide", seed=97)
        strip_summaries_on_disk(store)
        reopened = SegmentStore(store.directory, autoflush=False)
        del flush_counter[:]
        blocks = reopened.summary_range("s")
        assert all(block[4] is not None for block in blocks)
        assert not flush_counter  # backfill marked dirty but did not write
        on_disk = json.loads((store.directory / "catalog.json").read_text())
        assert on_disk["version"] == 2  # read path left the seed catalog alone
        reopened.flush()
        assert len(flush_counter) == 1
        third = SegmentStore(store.directory, autoflush=False)
        del flush_counter[:]
        assert all(block[4] is not None for block in third.summary_range("s"))
        third.flush()
        assert not flush_counter  # nothing dirty on the re-opened store

    def test_read_paths_do_not_write(self, tmp_path, flush_counter):
        store = fill_store(tmp_path, "swing", seed=101)
        strip_summaries_on_disk(store)
        reopened = SegmentStore(store.directory)
        del flush_counter[:]
        reopened.read("s")
        reopened.describe("s")
        reopened.read_block_arrays("s", 0, 1)
        assert not flush_counter
        on_disk = json.loads((store.directory / "catalog.json").read_text())
        assert on_disk["version"] == 2

    def test_sharded_members_backfill_once(self, tmp_path, flush_counter):
        sharded = ShardedStore(tmp_path / "sharded", shards=3, block_records=8)
        for seed, name in enumerate(["a", "b", "c", "d"]):
            sharded.append(name, make_recordings("slide", seed=seed, points=600))
        sharded.flush()
        for shard in sharded._shards:
            strip_summaries_on_disk(shard)
        reopened = ShardedStore(tmp_path / "sharded", shards=3, block_records=8)
        del flush_counter[:]
        for name in ["a", "b", "c", "d"]:
            blocks = reopened.summary_range(name)
            assert all(block[4] is not None for block in blocks)
        # One persisted backfill per stream (each upgrades only its own
        # catalog entry, flushing the owning shard's catalog once).
        assert len(flush_counter) == 4
        del flush_counter[:]
        for name in ["a", "b", "c", "d"]:
            reopened.summary_range(name)
        assert not flush_counter  # already summarized: no further writes
        third = ShardedStore(tmp_path / "sharded", shards=3, block_records=8)
        del flush_counter[:]
        for name in ["a", "b", "c", "d"]:
            third.summary_range(name)
        assert not flush_counter


# --------------------------------------------------------------------------- #
# Warm-started tangent searches
# --------------------------------------------------------------------------- #
class TestTangentHints:
    @pytest.mark.parametrize("seed", [3, 11, 19])
    def test_any_hint_matches_cold_search(self, seed):
        from repro.geometry.hull import IncrementalConvexHull
        from repro.geometry.tangents import (
            max_slope_lower_tangent_search,
            min_slope_upper_tangent_search,
        )

        rng = np.random.default_rng(seed)
        times = np.cumsum(rng.uniform(0.1, 1.0, 300))
        values = np.cumsum(rng.normal(0.0, 1.0, 300))
        hull = IncrementalConvexHull()
        hull.add_many(times, values)
        t_new = float(times[-1]) + 1.0
        for search, chain in (
            (min_slope_upper_tangent_search, hull.upper_chain()),
            (max_slope_lower_tangent_search, hull.lower_chain()),
        ):
            chain_t, chain_x = chain
            for _ in range(60):
                x_new = float(rng.normal(values[-1], 20.0))
                cold_line, cold_index = search(chain_t, chain_x, t_new, x_new, 0.25)
                # Every hint — exact, stale, negative, out of range — must
                # yield the identical line and support index.
                for hint in (-5, 0, cold_index, cold_index + 1, 10**6):
                    line, index = search(
                        chain_t, chain_x, t_new, x_new, 0.25, hint=hint
                    )
                    assert index == cold_index
                    assert line.slope == cold_line.slope
                    assert line.intercept == cold_line.intercept

    def test_slide_recordings_unchanged_by_hints(self):
        """Hull-mode slide output still matches the list-scan reference."""
        rng = np.random.default_rng(23)
        times = np.cumsum(rng.uniform(0.2, 1.0, 1200))
        values = np.cumsum(rng.normal(0.0, 1.0, 1200)).reshape(-1, 1)
        hinted = create_filter("slide", 0.5)
        reference = create_filter("slide", 0.5, use_convex_hull=False)
        got = hinted.process_batch(times, values) + hinted.finish()
        ref = reference.process_batch(times, values) + reference.finish()
        assert len(got) == len(ref)
        for g, r in zip(got, ref):
            assert g.kind == r.kind
            assert g.time == r.time
            np.testing.assert_allclose(g.value, r.value, rtol=1e-9, atol=1e-9)
