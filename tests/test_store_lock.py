"""Writer lock file: single-writer enforcement across processes.

A writable :class:`~repro.storage.segment_store.SegmentStore` stamps a
``store.lock`` file (``O_EXCL``) with its pid and host.  A second writer in
another process must fail fast with :class:`StoreLockedError`; readers,
same-process re-opens (the lock is reference counted per process) and
reclaiming a dead writer's stale lock must all keep working.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

import repro
from crash_harness import REPO_SRC, run_python_with_faults
from repro.api import FilterSpec, StorageSpec
from repro.storage import LOCK_NAME, StoreLock, StoreLockedError

FILTER = FilterSpec("slide", epsilon=0.5)


def open_store(path, **kwargs):
    return repro.open(path, filter=FILTER, **kwargs)


class TestStoreLockUnit:
    def test_stamp_and_release(self, tmp_path):
        lock = StoreLock.acquire(tmp_path)
        stamp = json.loads((tmp_path / LOCK_NAME).read_text())
        assert stamp["pid"] == os.getpid()
        assert stamp["host"]
        assert stamp["created_unix"] > 0
        lock.release()
        assert not (tmp_path / LOCK_NAME).exists()
        lock.release()  # idempotent

    def test_same_process_reacquire_is_refcounted(self, tmp_path):
        first = StoreLock.acquire(tmp_path)
        second = StoreLock.acquire(tmp_path)
        first.release()
        assert (tmp_path / LOCK_NAME).exists()  # still held by `second`
        second.release()
        assert not (tmp_path / LOCK_NAME).exists()

    def test_dead_pid_lock_is_reclaimed(self, tmp_path):
        dead = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(dead.stdout)
        (tmp_path / LOCK_NAME).write_text(
            json.dumps({"pid": dead_pid, "host": os.uname().nodename, "created_unix": 1.0})
        )
        lock = StoreLock.acquire(tmp_path)  # stale: holder is gone
        assert json.loads((tmp_path / LOCK_NAME).read_text())["pid"] == os.getpid()
        lock.release()

    def test_live_pid_lock_conflicts(self, tmp_path):
        (tmp_path / LOCK_NAME).write_text(
            json.dumps({"pid": os.getpid(), "host": "elsewhere", "created_unix": 1.0})
        )
        with pytest.raises(StoreLockedError) as conflict:
            StoreLock.acquire(tmp_path)
        assert conflict.value.host == "elsewhere"


class TestStoreLockIntegration:
    def test_lock_lives_with_the_session(self, tmp_path):
        store = tmp_path / "store"
        db = open_store(store)
        assert (store / LOCK_NAME).exists()
        db.close()
        assert not (store / LOCK_NAME).exists()

    def test_sharded_store_locks_every_shard(self, tmp_path):
        store = tmp_path / "store"
        db = open_store(store, shards=3)
        locks = sorted(p.parent.name for p in store.rglob(LOCK_NAME))
        assert locks == ["shard-00", "shard-01", "shard-02"]
        db.close()
        assert not list(store.rglob(LOCK_NAME))

    def test_same_process_second_writer_allowed(self, tmp_path):
        store = tmp_path / "store"
        first = open_store(store)
        second = open_store(store)
        first.close()
        assert (store / LOCK_NAME).exists()
        second.close()
        assert not (store / LOCK_NAME).exists()

    def test_cross_process_second_writer_rejected(self, tmp_path):
        store = tmp_path / "store"
        db = open_store(store)
        try:
            result = run_python_with_faults(
                "import repro\n"
                "from repro.api import FilterSpec\n"
                "from repro.storage import StoreLockedError\n"
                "try:\n"
                f"    repro.open({str(store)!r}, filter=FilterSpec('slide', epsilon=0.5))\n"
                "except StoreLockedError as error:\n"
                "    print('LOCKED', error.pid)\n"
            )
            assert result.returncode == 0, result.stderr
            marker, pid = result.stdout.split()
            assert marker == "LOCKED"
            assert int(pid) == os.getpid()
        finally:
            db.close()

    def test_readers_never_lock(self, tmp_path):
        store = tmp_path / "store"
        db = open_store(store)
        db.append("a", [0.0, 1.0, 2.0], [1.0, 5.0, 1.0])
        db.flush()
        try:
            result = run_python_with_faults(
                "import repro\n"
                f"db = repro.open({str(store)!r}, mode='r')\n"
                "print(len(db.read('a')))\n"
                "db.close()\n"
            )
            assert result.returncode == 0, result.stderr
            assert int(result.stdout) > 0
        finally:
            db.close()

    def test_failed_open_releases_the_lock(self, tmp_path):
        store = tmp_path / "store"
        db = open_store(store)
        db.append("a", [0.0, 1.0], [1.0, 2.0])
        db.close()
        with pytest.raises(ValueError):
            repro.open(store, storage=StorageSpec(backend="columnar"))
        assert not (store / LOCK_NAME).exists()
        open_store(store).close()  # and a correct open works right away

    def test_killed_writer_leaves_reclaimable_lock(self, tmp_path):
        """A SIGKILLed writer's stale lock must not brick the store."""
        store = tmp_path / "store"
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        code = (
            "import os, repro\n"
            "from repro.api import FilterSpec\n"
            f"db = repro.open({str(store)!r}, filter=FilterSpec('slide', epsilon=0.5))\n"
            "print('ready', flush=True)\n"
            "os._exit(9)\n"  # dies without releasing; lock file survives
        )
        result = subprocess.run(
            [sys.executable, "-c", code], env=env, capture_output=True, text=True
        )
        assert result.stdout.strip() == "ready"
        assert (store / LOCK_NAME).exists()
        db = open_store(store)  # stale holder detected, lock reclaimed
        assert json.loads((store / LOCK_NAME).read_text())["pid"] == os.getpid()
        db.close()
