"""Tests for the slide filter (paper §4)."""

import numpy as np
import pytest

from repro.approximation.reconstruct import reconstruct, segments_from_recordings
from repro.core.slide import SlideFilter, _closest_in_intervals, _intersect_interval_sets
from repro.core.swing import SwingFilter
from repro.core.types import RecordingKind
from repro.data.patterns import ramp_signal, sawtooth_signal, sine_signal
from repro.data.random_walk import RandomWalkConfig, random_walk

from conftest import assert_within_bound


class TestIntervalHelpers:
    def test_intersect_disjoint(self):
        assert _intersect_interval_sets([(0.0, 1.0)], [(2.0, 3.0)]) == []

    def test_intersect_overlapping(self):
        assert _intersect_interval_sets([(0.0, 2.0)], [(1.0, 3.0)]) == [(1.0, 2.0)]

    def test_intersect_multiple_pieces(self):
        result = _intersect_interval_sets([(0.0, 10.0)], [(1.0, 2.0), (5.0, 6.0)])
        assert result == [(1.0, 2.0), (5.0, 6.0)]

    def test_closest_inside(self):
        assert _closest_in_intervals(1.5, [(1.0, 2.0)]) == 1.5

    def test_closest_clamps(self):
        assert _closest_in_intervals(5.0, [(1.0, 2.0)]) == 2.0
        assert _closest_in_intervals(-5.0, [(1.0, 2.0)]) == 1.0

    def test_closest_picks_nearest_piece(self):
        assert _closest_in_intervals(4.9, [(1.0, 2.0), (5.0, 6.0)]) == 5.0


class TestBasicBehaviour:
    def test_ramp_needs_two_recordings(self):
        times, values = ramp_signal(length=300, slope=0.7)
        result = SlideFilter(0.01).process(zip(times, values))
        assert result.recording_count == 2

    def test_paper_example_outlasts_swing(self):
        """Example 4.1: the slide filter absorbs the fifth point that forces
        the swing filter to record."""
        epsilon = 1.0
        stream = [(0.0, 0.0), (1.0, 2.0), (2.0, 2.5), (3.0, 1.8), (4.0, 0.6)]
        slide = SlideFilter(epsilon).process(stream)
        swing = SwingFilter(epsilon).process(stream)
        slide_segments = segments_from_recordings(slide)
        swing_segments = segments_from_recordings(swing)
        assert len(slide_segments) <= len(swing_segments)

    def test_fewer_segments_than_swing(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 1.0
        slide = SlideFilter(epsilon).process(zip(times, values))
        swing = SwingFilter(epsilon).process(zip(times, values))
        assert len(segments_from_recordings(slide)) < len(segments_from_recordings(swing))

    def test_single_point_stream(self):
        result = SlideFilter(0.5).process([(0.0, 2.0)])
        assert result.recording_count == 1
        assert reconstruct(result).value_at(0.0)[0] == pytest.approx(2.0)

    def test_two_point_stream(self):
        result = SlideFilter(0.5).process([(0.0, 1.0), (1.0, 3.0)])
        approx = reconstruct(result)
        assert abs(approx.value_at(0.0)[0] - 1.0) <= 0.5 + 1e-9
        assert abs(approx.value_at(1.0)[0] - 3.0) <= 0.5 + 1e-9

    def test_empty_stream(self):
        result = SlideFilter(0.5).process([])
        assert result.recording_count == 0

    def test_three_point_stream_ending_on_violation(self):
        stream = [(0.0, 0.0), (1.0, 0.1), (2.0, 10.0)]
        epsilon = 0.5
        result = SlideFilter(epsilon).process(stream)
        assert_within_bound(result, [t for t, _ in stream], [v for _, v in stream], epsilon)

    def test_mixture_of_connected_and_disconnected(self, noisy_walk):
        times, values = noisy_walk
        segments = segments_from_recordings(SlideFilter(1.0).process(zip(times, values)))
        connected = sum(1 for s in segments if s.connected_to_previous)
        assert 0 < connected < len(segments)


class TestErrorGuarantee:
    @pytest.mark.parametrize("epsilon", [0.1, 0.5, 2.0])
    def test_random_walk_bound(self, noisy_walk, epsilon):
        times, values = noisy_walk
        result = SlideFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    @pytest.mark.parametrize("epsilon", [0.1, 0.5, 2.0])
    def test_random_walk_bound_without_validation(self, noisy_walk, epsilon):
        times, values = noisy_walk
        result = SlideFilter(epsilon, validate_connections=False).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_sine_bound(self):
        times, values = sine_signal(length=2000, amplitude=10.0, period=300.0)
        epsilon = 0.25
        result = SlideFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_sawtooth_bound(self):
        times, values = sawtooth_signal(length=1000, amplitude=3.0, period=80.0)
        epsilon = 0.2
        result = SlideFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_multidimensional_bound(self):
        rng = np.random.default_rng(8)
        times = np.arange(500.0)
        values = np.cumsum(rng.normal(0, [0.3, 0.8, 1.5], (500, 3)), axis=0)
        epsilon = [0.5, 1.0, 2.0]
        result = SlideFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_zero_epsilon(self):
        times = np.arange(25.0)
        values = np.where(times % 3 == 0, 0.0, 1.0)
        result = SlideFilter(0.0).process(zip(times, values))
        assert_within_bound(result, times, values, 0.0)

    def test_irregular_time_steps(self):
        rng = np.random.default_rng(10)
        times = np.cumsum(rng.uniform(0.05, 3.0, 400))
        values = np.cumsum(rng.normal(0, 0.5, 400))
        epsilon = 0.4
        result = SlideFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_non_optimized_variant_bound(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 0.5
        result = SlideFilter(epsilon, use_convex_hull=False).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_disconnected_only_variant_bound(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 0.5
        result = SlideFilter(epsilon, connect_segments=False).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)


class TestVariantsAgree:
    def test_hull_optimization_does_not_change_output(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 0.8
        optimized = SlideFilter(epsilon).process(zip(times, values))
        plain = SlideFilter(epsilon, use_convex_hull=False).process(zip(times, values))
        assert optimized.recording_count == plain.recording_count
        for a, b in zip(optimized.recordings, plain.recordings):
            assert a.time == pytest.approx(b.time)
            assert a.value == pytest.approx(b.value)

    def test_validation_rarely_changes_output(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 0.8
        validated = SlideFilter(epsilon).process(zip(times, values))
        trusted = SlideFilter(epsilon, validate_connections=False).process(zip(times, values))
        # The analytic window of Lemma 4.4 and the exact check should agree on
        # this workload (the validation is a safety net, not a different
        # algorithm).
        assert validated.recording_count == trusted.recording_count

    def test_connecting_never_hurts_compression(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 0.8
        connected = SlideFilter(epsilon).process(zip(times, values))
        disconnected = SlideFilter(epsilon, connect_segments=False).process(zip(times, values))
        assert connected.recording_count <= disconnected.recording_count


class TestCompressionQuality:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_beats_swing_on_random_walk(self, noisy_walk, epsilon):
        times, values = noisy_walk
        slide = SlideFilter(epsilon).process(zip(times, values))
        swing = SwingFilter(epsilon).process(zip(times, values))
        assert slide.recording_count <= swing.recording_count

    def test_compression_at_least_one(self, sst_signal):
        times, values = sst_signal
        result = SlideFilter(0.004).process(zip(times, values))
        assert result.compression_ratio >= 1.0

    def test_hull_stays_small(self, smooth_walk):
        times, values = smooth_walk
        slide = SlideFilter(1.0)
        max_vertices = 0
        for t, v in zip(times, values):
            slide.feed(t, v)
            if slide._hulls:
                max_vertices = max(max_vertices, slide._hulls[0].vertex_count)
        slide.finish()
        # The paper observes that the hull stays tiny regardless of how many
        # points the interval spans.
        assert max_vertices <= 32


class TestMaxLag:
    def test_max_lag_bounds_gap_between_recordings(self):
        times, values = ramp_signal(length=150, slope=0.02)
        result = SlideFilter(5.0, max_lag=20).process(zip(times, values))
        gaps = np.diff([r.time for r in result.recordings])
        assert np.max(gaps) <= 2 * 20.0

    def test_max_lag_preserves_error_bound(self):
        times, values = random_walk(
            RandomWalkConfig(length=800, decrease_probability=0.5, max_delta=1.5, seed=12)
        )
        epsilon = 0.7
        result = SlideFilter(epsilon, max_lag=10).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_max_lag_costs_compression(self, smooth_walk):
        times, values = smooth_walk
        epsilon = 1.0
        bounded = SlideFilter(epsilon, max_lag=8).process(zip(times, values))
        unbounded = SlideFilter(epsilon).process(zip(times, values))
        assert bounded.recording_count >= unbounded.recording_count
