"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.approximation.reconstruct import reconstruct
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.data.sst import sea_surface_temperature


# --------------------------------------------------------------------------- #
# Signals
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="session")
def sst_signal():
    """The canonical sea-surface-temperature surrogate."""
    return sea_surface_temperature()


@pytest.fixture(scope="session")
def noisy_walk():
    """A 1-D oscillating random walk with moderately large steps."""
    return random_walk(RandomWalkConfig(length=1_500, decrease_probability=0.5, max_delta=2.0, seed=3))


@pytest.fixture(scope="session")
def smooth_walk():
    """A 1-D random walk with small steps (long filtering intervals)."""
    return random_walk(RandomWalkConfig(length=1_500, decrease_probability=0.5, max_delta=0.2, seed=4))


@pytest.fixture(scope="session")
def monotone_walk():
    """A monotonically increasing random walk."""
    return random_walk(RandomWalkConfig(length=1_000, decrease_probability=0.0, max_delta=1.0, seed=5))


# --------------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------------- #
def assert_within_bound(result, times, values, epsilon, slack: float = 1e-8):
    """Reconstruct a filter result and assert the paper's L∞ guarantee."""
    approximation = reconstruct(result)
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    deviations = np.abs(approximation.deviations(list(zip(times, values))))
    bound = np.atleast_1d(np.asarray(epsilon, dtype=float))
    if bound.size == 1 and deviations.shape[1] > 1:
        bound = np.full(deviations.shape[1], float(bound[0]))
    tolerance = bound + slack * (1.0 + np.abs(bound))
    worst = float(np.max(deviations - tolerance)) if deviations.size else -1.0
    assert np.all(deviations <= tolerance), (
        f"error bound violated by {worst:.3e} (epsilon={epsilon!r})"
    )
    return approximation


@pytest.fixture
def within_bound_checker():
    """Expose :func:`assert_within_bound` as a fixture."""
    return assert_within_bound
