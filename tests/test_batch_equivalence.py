"""Batch/per-point equivalence: process_batch must mirror feed() exactly.

The contract of :meth:`StreamFilter.process_batch` is that the emitted
recordings are *identical* — times, values (bit for bit) and kinds — to the
ones the per-point path produces, for every registered filter and for any
chunking of the stream.  These tests pin that contract for all registry
entries across chunk sizes 1 (degenerate), 7 (odd, never aligned with
segment boundaries) and 1024 (larger than most filtering intervals).
"""

import numpy as np
import pytest

from repro.core.registry import FILTER_REGISTRY, create_filter
from repro.data.patterns import sine_signal
from repro.data.random_walk import RandomWalkConfig, random_walk

CHUNK_SIZES = (1, 7, 1024)
ALL_FILTERS = sorted(FILTER_REGISTRY)


def run_per_point(name, times, values, epsilon, **kwargs):
    stream_filter = create_filter(name, epsilon, **kwargs)
    for t, v in zip(times, values):
        stream_filter.feed(t, v)
    stream_filter.finish()
    return stream_filter


def run_batched(name, times, values, epsilon, chunk_size, **kwargs):
    stream_filter = create_filter(name, epsilon, **kwargs)
    times = np.asarray(times, dtype=float)
    values = np.asarray(values, dtype=float)
    for start in range(0, len(times), chunk_size):
        stream_filter.process_batch(
            times[start : start + chunk_size], values[start : start + chunk_size]
        )
    stream_filter.finish()
    return stream_filter


def assert_identical_recordings(reference, candidate):
    assert reference.recording_count == candidate.recording_count
    for expected, actual in zip(reference.recordings, candidate.recordings):
        assert actual.kind is expected.kind
        assert actual.time == expected.time
        assert np.array_equal(actual.value, expected.value)


class TestAllRegisteredFilters:
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    @pytest.mark.parametrize("name", ALL_FILTERS)
    def test_noisy_walk_identical(self, name, chunk_size, noisy_walk):
        times, values = noisy_walk
        reference = run_per_point(name, times, values, 0.8)
        candidate = run_batched(name, times, values, 0.8, chunk_size)
        assert_identical_recordings(reference, candidate)
        assert candidate.points_processed == reference.points_processed

    @pytest.mark.parametrize("name", ALL_FILTERS)
    def test_smooth_walk_identical(self, name, smooth_walk):
        times, values = smooth_walk
        reference = run_per_point(name, times, values, 0.5)
        candidate = run_batched(name, times, values, 0.5, 256)
        assert_identical_recordings(reference, candidate)

    @pytest.mark.parametrize("name", ALL_FILTERS)
    def test_multidimensional_identical(self, name):
        rng = np.random.default_rng(17)
        times = np.arange(600.0)
        values = np.cumsum(rng.normal(0.0, [0.3, 1.2, 0.05], (600, 3)), axis=0)
        reference = run_per_point(name, times, values, [0.4, 1.5, 0.1])
        candidate = run_batched(name, times, values, [0.4, 1.5, 0.1], 128)
        assert_identical_recordings(reference, candidate)

    @pytest.mark.parametrize("name", ALL_FILTERS)
    def test_irregular_times_identical(self, name):
        rng = np.random.default_rng(23)
        times = np.cumsum(rng.uniform(0.05, 3.0, 800))
        values = np.cumsum(rng.normal(0.0, 0.6, 800))
        reference = run_per_point(name, times, values, 0.9)
        candidate = run_batched(name, times, values, 0.9, 97)
        assert_identical_recordings(reference, candidate)


class TestMixedUsage:
    """feed() and process_batch() may be interleaved on one filter."""

    @pytest.mark.parametrize("name", ["swing", "slide", "linear", "cache"])
    def test_interleaved_feed_and_batch(self, name, noisy_walk):
        times, values = noisy_walk
        reference = run_per_point(name, times, values, 1.0)
        candidate = create_filter(name, 1.0)
        cut_one, cut_two = 100, 700
        for t, v in zip(times[:cut_one], values[:cut_one]):
            candidate.feed(t, v)
        candidate.process_batch(times[cut_one:cut_two], values[cut_one:cut_two])
        for t, v in zip(times[cut_two : cut_two + 50], values[cut_two : cut_two + 50]):
            candidate.feed(t, v)
        candidate.process_batch(times[cut_two + 50 :], values[cut_two + 50 :])
        candidate.finish()
        assert_identical_recordings(reference, candidate)


class TestMaxLagFallback:
    """With max_lag the batch path falls back to per-point processing."""

    @pytest.mark.parametrize("name", ["swing", "slide", "linear", "cache"])
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_max_lag_identical(self, name, chunk_size, smooth_walk):
        times, values = smooth_walk
        reference = run_per_point(name, times, values, 1.0, max_lag=9)
        candidate = run_batched(name, times, values, 1.0, chunk_size, max_lag=9)
        assert_identical_recordings(reference, candidate)


class TestSineSignal:
    @pytest.mark.parametrize("name", ["swing", "slide"])
    @pytest.mark.parametrize("chunk_size", CHUNK_SIZES)
    def test_sine_identical(self, name, chunk_size):
        times, values = sine_signal(length=1200, amplitude=8.0, period=140.0)
        reference = run_per_point(name, times, values, 0.3)
        candidate = run_batched(name, times, values, 0.3, chunk_size)
        assert_identical_recordings(reference, candidate)
