"""Tests for the compression, error and timing metrics."""

import numpy as np
import pytest

from repro.approximation.piecewise import PiecewiseLinearApproximation
from repro.approximation.reconstruct import reconstruct
from repro.core.swing import SwingFilter
from repro.core.types import FilterResult, Recording, RecordingKind, Segment
from repro.metrics.compression import (
    compression_ratio,
    independent_equivalent_ratio,
    recordings_for_run,
)
from repro.metrics.error import (
    average_error,
    average_error_percent_of_range,
    error_profile,
    max_error,
    signal_range,
)
from repro.metrics.timing import measure_filter_overhead


def make_result(recordings, points):
    return FilterResult(
        recordings=[Recording(float(i), 0.0, RecordingKind.HOLD) for i in range(recordings)],
        points_processed=points,
        dimensions=1,
    )


class TestCompression:
    def test_ratio_from_result(self):
        assert compression_ratio(make_result(5, 50)) == 10.0

    def test_ratio_from_count(self):
        assert compression_ratio(4, point_count=40) == 10.0

    def test_ratio_from_count_requires_points(self):
        with pytest.raises(ValueError):
            compression_ratio(4)

    def test_zero_recordings(self):
        assert compression_ratio(make_result(0, 10)) == float("inf")
        assert compression_ratio(make_result(0, 0)) == 0.0

    def test_recordings_for_run(self):
        assert recordings_for_run(make_result(7, 70)) == 7
        assert recordings_for_run(9) == 9

    def test_independent_equivalent_ratio_matches_paper_example(self):
        # Paper §5.4: 2.47 × (5+1)/(2·5) = 1.48 for a 5-dimensional signal.
        assert independent_equivalent_ratio(2.47, 5) == pytest.approx(1.482, abs=1e-3)

    def test_independent_equivalent_ratio_single_dimension_is_identity(self):
        assert independent_equivalent_ratio(3.0, 1) == pytest.approx(3.0)

    def test_independent_equivalent_ratio_validates_dimensions(self):
        with pytest.raises(ValueError):
            independent_equivalent_ratio(1.0, 0)


class TestErrorMetrics:
    def setup_method(self):
        self.approx = PiecewiseLinearApproximation([Segment(0.0, [0.0], 10.0, [10.0])])
        self.times = np.array([0.0, 5.0, 10.0])
        self.values = np.array([1.0, 5.0, 9.0])

    def test_signal_range(self):
        assert signal_range(self.values) == pytest.approx(8.0)

    def test_signal_range_empty(self):
        with pytest.raises(ValueError):
            signal_range(np.array([]))

    def test_average_error(self):
        assert average_error(self.approx, self.times, self.values) == pytest.approx(2.0 / 3.0)

    def test_max_error(self):
        assert max_error(self.approx, self.times, self.values) == pytest.approx(1.0)

    def test_percent_of_range(self):
        expected = 100.0 * (2.0 / 3.0) / 8.0
        assert average_error_percent_of_range(self.approx, self.times, self.values) == pytest.approx(expected)

    def test_error_profile(self):
        profile = error_profile(self.approx, self.times, self.values)
        assert profile.max_absolute == pytest.approx(1.0)
        assert profile.mean_absolute == pytest.approx(2.0 / 3.0)
        assert profile.root_mean_square >= profile.mean_absolute
        assert profile.max_percent_of_range == pytest.approx(12.5)

    def test_error_profile_constant_signal(self):
        approx = PiecewiseLinearApproximation([Segment(0.0, [1.0], 1.0, [1.0])])
        profile = error_profile(approx, [0.0, 1.0], [1.0, 1.0])
        assert profile.mean_absolute == 0.0
        assert profile.mean_percent_of_range == 0.0

    def test_average_error_below_epsilon_for_real_filter(self, sst_signal):
        times, values = sst_signal
        epsilon = 0.2
        result = SwingFilter(epsilon).process(zip(times, values))
        approx = reconstruct(result)
        assert average_error(approx, times, values) <= epsilon


class TestTiming:
    def test_measure_overhead_basic(self):
        times = np.arange(300.0)
        values = np.sin(times / 10.0)
        timing = measure_filter_overhead(lambda: SwingFilter(0.05), times, values, repeats=1)
        assert timing.points == 300
        assert timing.microseconds_per_point >= 0.0
        assert timing.filter_name == "swing"

    def test_measure_overhead_validates_input(self):
        with pytest.raises(ValueError):
            measure_filter_overhead(lambda: SwingFilter(0.1), [], [], repeats=1)
        with pytest.raises(ValueError):
            measure_filter_overhead(lambda: SwingFilter(0.1), [0.0], [1.0], repeats=0)

    def test_explicit_name_used(self):
        times = np.arange(50.0)
        values = np.zeros(50)
        timing = measure_filter_overhead(
            lambda: SwingFilter(0.1), times, values, repeats=1, filter_name="custom"
        )
        assert timing.filter_name == "custom"
