"""Snapshot readers: pinned generations, and a real two-process soak.

The soak is the acceptance test for the concurrent-reader contract: a
writer process appends 10k recordings while this process loops range,
aggregate and zoom queries through a snapshot reader — every observed
view must be a consistent prefix of the final stream (never torn, never
time-unordered), and observed sizes must be monotone across refreshes.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time

import numpy as np
import pytest
from crash_harness import REPO_SRC

import repro
from repro.approximation.reconstruct import reconstruct
from repro.core.types import Recording, RecordingKind
from repro.queries.aggregates import range_aggregate
from repro.queries.planner import plan_range_aggregate
from repro.storage import SegmentStore, open_store

TOTAL = 10_000
BATCHES = 100


def value_at(i):
    return float(np.sin(i / 7.0) + i * 0.001)


def recordings(n, start=0):
    return [
        Recording(
            float(start + i),
            np.array([value_at(start + i)]),
            RecordingKind.SEGMENT_START,
        )
        for i in range(n)
    ]


WRITER_CHILD = """
import numpy as np
from repro.core.types import Recording, RecordingKind
from repro.storage import SegmentStore

def value_at(i):
    return float(np.sin(i / 7.0) + i * 0.001)

store = SegmentStore({directory!r}, autoflush=False)
per_batch = {total} // {batches}
for batch in range({batches}):
    start = batch * per_batch
    store.append("s", [
        Recording(float(start + i), np.array([value_at(start + i)]),
                  RecordingKind.SEGMENT_START)
        for i in range(per_batch)
    ])
    if batch % 10 == 9:
        store.flush()
store.close()
"""


def check_view(reader, expect_at_least=2):
    """One consistency probe; returns the number of recordings seen."""
    if "s" not in reader:
        return 0
    kinds, times, values = reader.read_arrays("s")
    n = times.shape[0]
    if n == 0:
        return 0
    # A consistent prefix: times are exactly 0..n-1 and every value matches
    # the writer's deterministic formula — a torn or reordered view cannot
    # pass this.
    np.testing.assert_array_equal(times, np.arange(n, dtype=float))
    np.testing.assert_allclose(
        values[:, 0], [value_at(i) for i in range(n)], rtol=0, atol=1e-12
    )
    if n >= expect_at_least:
        planned = plan_range_aggregate(reader, "s", times[0], times[-1], 0)
        brute = range_aggregate(reconstruct(reader.read("s")), times[0], times[-1])
        for field in ("minimum", "maximum", "mean", "integral"):
            assert abs(getattr(planned, field) - getattr(brute, field)) <= 1e-9
        # The pyramid is empty until the block index outgrows one fan-out;
        # once present, every level must span exactly the pinned view.
        for level in reader.pyramid_levels("s"):
            assert level[0][0] == 0.0
            assert level[-1][1] == times[-1]
    return n


@pytest.mark.faults
class TestTwoProcessSoak:
    def test_snapshot_reader_never_sees_torn_views(self, tmp_path):
        directory = tmp_path / "store"
        setup = SegmentStore(directory, autoflush=False)
        setup.ensure_stream("s", 1)
        setup.flush()
        setup.close()

        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        writer = subprocess.Popen(
            [
                sys.executable,
                "-c",
                WRITER_CHILD.format(
                    directory=str(directory), total=TOTAL, batches=BATCHES
                ),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        reader = SegmentStore.open(directory, mode="r", snapshot=True)
        try:
            counts = [check_view(reader)]
            probes = 0
            deadline = time.monotonic() + 120
            while writer.poll() is None:
                assert time.monotonic() < deadline, "writer did not finish"
                reader.refresh()
                counts.append(check_view(reader))
                probes += 1
            stdout, stderr = writer.communicate(timeout=30)
            assert writer.returncode == 0, stderr
            assert probes > 0
            # Sizes observed across refreshes are monotone...
            assert counts == sorted(counts)
            # ...and the final refresh sees the writer's complete output.
            reader.refresh()
            assert check_view(reader) == TOTAL
        finally:
            if writer.poll() is None:
                writer.kill()
            reader.close()


class TestSnapshotSemantics:
    def test_snapshot_pins_generation_until_refresh(self, tmp_path):
        writer = SegmentStore(tmp_path, autoflush=False)
        writer.append("s", recordings(100))
        writer.flush()

        reader = SegmentStore.open(tmp_path, mode="r", snapshot=True)
        pinned = reader.generation
        assert reader.describe("s").recordings == 100

        writer.append("s", recordings(100, start=100))
        # The journal already carries the append, but the pinned snapshot
        # must not move...
        assert reader.describe("s").recordings == 100
        assert reader.generation == pinned
        assert reader.read_arrays("s")[1].shape[0] == 100
        # ...until an explicit refresh re-pins it.
        assert reader.refresh() > pinned
        assert reader.describe("s").recordings == 200
        reader.close()
        writer.close()

    def test_snapshot_sees_unflushed_journal_state_on_open(self, tmp_path):
        writer = SegmentStore(tmp_path, autoflush=False)
        writer.append("s", recordings(50))
        # No flush: the catalog checkpoint does not exist yet, only journal
        # records do.  A snapshot opened now still sees the 50 recordings.
        reader = SegmentStore.open(tmp_path, mode="r", snapshot=True)
        assert reader.describe("s").recordings == 50
        reader.close()
        writer.close()

    def test_reader_mutations_raise_permission_error(self, tmp_path):
        writer = SegmentStore(tmp_path)
        writer.append("s", recordings(10))
        writer.close()
        reader = SegmentStore.open(tmp_path, mode="r")
        with pytest.raises(PermissionError):
            reader.append("s", recordings(10, start=10))
        with pytest.raises(PermissionError):
            reader.delete("s")
        with pytest.raises(PermissionError):
            reader.truncate_stream("s", 5)
        with pytest.raises(PermissionError):
            reader.compact("s")
        reader.close()

    def test_reader_requires_existing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            SegmentStore.open(tmp_path / "absent", mode="r")

    def test_pyramid_query_on_reader_does_not_persist(self, tmp_path):
        writer = SegmentStore(tmp_path, block_records=8)
        writer.append("s", recordings(64))
        writer.close()
        before = (tmp_path / "catalog.json").read_bytes()
        reader = SegmentStore.open(tmp_path, mode="r", snapshot=True)
        assert reader.pyramid_levels("s")
        reader.close()
        assert (tmp_path / "catalog.json").read_bytes() == before

    def test_sharded_store_forwards_snapshot_mode(self, tmp_path):
        writer = open_store(tmp_path, shards=2)
        writer.append("a", recordings(10))
        writer.append("b", recordings(10))
        writer.close()
        reader = open_store(tmp_path, mode="r", snapshot=True)
        assert reader.read_only
        assert sorted(reader.stream_names()) == ["a", "b"]
        assert reader.read_arrays("a")[1].shape[0] == 10
        with pytest.raises(PermissionError):
            reader.append("a", recordings(5, start=10))
        reader.refresh()
        reader.close()


class TestSessionReadOnly:
    def test_open_mode_r_gives_read_only_session(self, tmp_path):
        with repro.open(tmp_path / "db", filter=repro.FilterSpec(epsilon=0.1)) as db:
            db.append("s", np.arange(50.0), np.sin(np.arange(50.0) / 3.0))
        ro = repro.open(tmp_path / "db", mode="r", snapshot=True)
        try:
            assert ro.read_only
            assert ro.streams() == ["s"]
            assert len(ro.read("s")) > 0
            with pytest.raises(PermissionError):
                ro.append("s", [50.0], [0.0])
            ro.refresh()
        finally:
            ro.close()

    def test_writable_session_reports_not_read_only(self, tmp_path):
        with repro.open(tmp_path / "db") as db:
            assert not db.read_only

    def test_mode_conflicts_with_storage_spec(self, tmp_path):
        with pytest.raises(ValueError):
            repro.open(tmp_path / "db", storage=repro.StorageSpec(), mode="r")
