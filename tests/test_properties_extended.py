"""Additional property-based tests: queries, storage and cross-filter laws."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.approximation.reconstruct import reconstruct
from repro.core.cache import CacheFilter, MidrangeCacheFilter
from repro.core.slide import SlideFilter
from repro.core.swing import SwingFilter
from repro.extensions.optimal_pca import optimal_segment_count
from repro.queries.aggregates import range_aggregate, resample, window_aggregates
from repro.storage.segment_store import SegmentStore


def signals(min_size=3, max_size=80, value_range=30.0):
    return st.lists(
        st.tuples(
            st.floats(min_value=0.1, max_value=3.0, allow_nan=False),
            st.floats(min_value=-value_range, max_value=value_range, allow_nan=False),
        ),
        min_size=min_size,
        max_size=max_size,
    ).map(
        lambda steps: (
            np.cumsum([s[0] for s in steps]),
            np.array([s[1] for s in steps]),
        )
    )


epsilons = st.floats(min_value=0.05, max_value=10.0, allow_nan=False)


@given(signal=signals(), epsilon=epsilons)
@settings(max_examples=30, deadline=None)
def test_range_aggregates_bounded_by_epsilon(signal, epsilon):
    """Min/max/mean queried from the compressed signal stay within ε of the truth."""
    times, values = signal
    approx = reconstruct(SlideFilter(epsilon).process(zip(times, values)))
    aggregate = range_aggregate(approx, float(times[0]), float(times[-1]))
    assert aggregate.maximum >= values.max() - epsilon - 1e-7
    assert aggregate.minimum <= values.min() + epsilon + 1e-7
    assert aggregate.minimum - 1e-7 <= aggregate.mean <= aggregate.maximum + 1e-7


@given(signal=signals(), epsilon=epsilons, window=st.floats(min_value=0.5, max_value=50.0))
@settings(max_examples=30, deadline=None)
def test_window_aggregates_partition_the_range(signal, epsilon, window):
    """Tumbling windows tile the queried range exactly, without gaps."""
    times, values = signal
    approx = reconstruct(SwingFilter(epsilon).process(zip(times, values)))
    start, end = float(times[0]), float(times[-1])
    windows = window_aggregates(approx, start, end, window)
    assert windows[0].start == start
    assert windows[-1].end == pytest.approx(end)
    for left, right in zip(windows, windows[1:]):
        assert right.start == pytest.approx(left.end)
    total = sum(w.integral for w in windows)
    assert total == pytest.approx(range_aggregate(approx, start, end).integral, rel=1e-6, abs=1e-6)


@given(signal=signals(), epsilon=epsilons)
@settings(max_examples=25, deadline=None)
def test_resampling_at_original_times_respects_epsilon(signal, epsilon):
    times, values = signal
    approx = reconstruct(SlideFilter(epsilon).process(zip(times, values)))
    sampled = approx.values_at(times)[:, 0]
    assert np.max(np.abs(sampled - values)) <= epsilon + 1e-6 * (1.0 + epsilon)


@given(signal=signals(), epsilon=epsilons)
@settings(max_examples=20, deadline=None)
def test_segment_store_round_trip_is_lossless(tmp_path_factory, signal, epsilon):
    """Recordings survive the store byte-for-byte (up to float64 precision)."""
    times, values = signal
    result = SlideFilter(epsilon).process(zip(times, values))
    store = SegmentStore(tmp_path_factory.mktemp("roundtrip"))
    store.append("stream", result.recordings, epsilon=epsilon)
    restored = store.read("stream")
    assert len(restored) == result.recording_count
    for original, copy in zip(result.recordings, restored):
        assert original.kind is copy.kind
        assert original.time == copy.time
        np.testing.assert_array_equal(original.value, copy.value)


@given(signal=signals(), epsilon=epsilons)
@settings(max_examples=30, deadline=None)
def test_midrange_cache_matches_offline_optimum(signal, epsilon):
    """The online midrange cache filter is optimal for piece-wise constants [18]."""
    times, values = signal
    online = MidrangeCacheFilter(epsilon).process(zip(times, values))
    assert online.recording_count == optimal_segment_count(values, epsilon)


@given(signal=signals(), epsilon=epsilons)
@settings(max_examples=30, deadline=None)
def test_first_value_cache_never_beats_midrange(signal, epsilon):
    times, values = signal
    first = CacheFilter(epsilon).process(zip(times, values))
    midrange = MidrangeCacheFilter(epsilon).process(zip(times, values))
    assert midrange.recording_count <= first.recording_count


@given(signal=signals(), small=epsilons, factor=st.floats(min_value=1.5, max_value=10.0))
@settings(max_examples=25, deadline=None)
def test_wider_epsilon_never_needs_more_recordings_for_cache(signal, small, factor):
    """For the cache filter a wider band can only merge intervals."""
    times, values = signal
    narrow = CacheFilter(small).process(zip(times, values))
    wide = CacheFilter(small * factor).process(zip(times, values))
    assert wide.recording_count <= narrow.recording_count


@given(signal=signals(min_size=4), epsilon=epsilons, max_lag=st.integers(2, 10))
@settings(max_examples=25, deadline=None)
def test_bounded_lag_never_reduces_recordings(signal, epsilon, max_lag):
    """Tightening the lag bound can only add transmissions."""
    times, values = signal
    for filter_class in (SwingFilter, SlideFilter):
        bounded = filter_class(epsilon, max_lag=max_lag).process(zip(times, values))
        unbounded = filter_class(epsilon).process(zip(times, values))
        assert bounded.recording_count >= unbounded.recording_count
