"""Tests for the shared :class:`~repro.core.base.StreamFilter` machinery."""

import numpy as np
import pytest

from repro.core.base import StreamFilter
from repro.core.cache import CacheFilter
from repro.core.errors import (
    DimensionMismatchError,
    FilterStateError,
    StreamOrderError,
)
from repro.core.swing import SwingFilter
from repro.core.types import DataPoint, RecordingKind


class EchoFilter(StreamFilter):
    """Trivial filter recording every point (used to test the base class)."""

    name = "echo"
    family = "constant"

    def _feed_point(self, point):
        self._emit(point.time, point.value, RecordingKind.HOLD)

    def _finish_stream(self):
        pass


class TestValidation:
    def test_strictly_increasing_times_enforced(self):
        stream_filter = EchoFilter(1.0)
        stream_filter.feed(0.0, 1.0)
        with pytest.raises(StreamOrderError):
            stream_filter.feed(0.0, 2.0)
        with pytest.raises(StreamOrderError):
            stream_filter.feed(-1.0, 2.0)

    def test_dimension_mismatch_rejected(self):
        stream_filter = EchoFilter(1.0)
        stream_filter.feed(0.0, [1.0, 2.0])
        with pytest.raises(DimensionMismatchError):
            stream_filter.feed(1.0, 3.0)

    def test_feed_after_finish_rejected(self):
        stream_filter = EchoFilter(1.0)
        stream_filter.feed(0.0, 1.0)
        stream_filter.finish()
        with pytest.raises(FilterStateError):
            stream_filter.feed(1.0, 2.0)

    def test_epsilon_resolved_on_first_point(self):
        stream_filter = EchoFilter(0.5)
        assert stream_filter.epsilon is None
        stream_filter.feed(0.0, [1.0, 2.0, 3.0])
        assert stream_filter.epsilon.dimensions == 3

    def test_max_lag_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            SwingFilter(1.0, max_lag=1)


class TestLifecycle:
    def test_feed_returns_new_recordings_only(self):
        stream_filter = EchoFilter(1.0)
        first = stream_filter.feed(0.0, 1.0)
        second = stream_filter.feed(1.0, 2.0)
        assert len(first) == 1
        assert len(second) == 1
        assert first[0].time == 0.0
        assert second[0].time == 1.0

    def test_finish_is_idempotent(self):
        stream_filter = EchoFilter(1.0)
        stream_filter.feed(0.0, 1.0)
        stream_filter.finish()
        assert stream_filter.finish() == []

    def test_finish_on_empty_stream(self):
        stream_filter = EchoFilter(1.0)
        assert stream_filter.finish() == []
        assert stream_filter.result().points_processed == 0

    def test_process_accepts_tuples_and_datapoints(self):
        result = EchoFilter(1.0).process([(0.0, 1.0), DataPoint(1.0, 2.0)])
        assert result.points_processed == 2
        assert result.recording_count == 2

    def test_result_reflects_dimensions(self):
        result = EchoFilter(1.0).process([(0.0, [1.0, 2.0])])
        assert result.dimensions == 2

    def test_run_classmethod(self):
        result = CacheFilter.run([(0.0, 1.0), (1.0, 1.1)], epsilon=0.5)
        assert result.points_processed == 2

    def test_feed_point_equivalent_to_feed(self):
        a = EchoFilter(1.0)
        b = EchoFilter(1.0)
        a.feed(0.0, 3.0)
        b.feed_point(DataPoint(0.0, 3.0))
        assert a.recordings[0].time == b.recordings[0].time

    def test_points_processed_counts_all(self):
        stream_filter = SwingFilter(10.0)
        for t in range(10):
            stream_filter.feed(float(t), 0.0)
        assert stream_filter.points_processed == 10

    def test_recordings_property_is_immutable_copy(self):
        stream_filter = EchoFilter(1.0)
        stream_filter.feed(0.0, 1.0)
        recordings = stream_filter.recordings
        assert isinstance(recordings, tuple)
        assert len(recordings) == 1
