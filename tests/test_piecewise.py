"""Tests for the evaluable piece-wise approximations."""

import numpy as np
import pytest

from repro.approximation.piecewise import (
    PiecewiseConstantApproximation,
    PiecewiseLinearApproximation,
    approximate_points,
)
from repro.core.types import Segment


def make_pla():
    return PiecewiseLinearApproximation(
        [
            Segment(0.0, [0.0], 10.0, [10.0]),
            Segment(12.0, [0.0], 20.0, [4.0]),
            Segment(20.0, [4.0], 30.0, [4.0], connected_to_previous=True),
        ]
    )


class TestPiecewiseLinear:
    def test_requires_segments(self):
        with pytest.raises(ValueError):
            PiecewiseLinearApproximation([])

    def test_requires_time_order(self):
        with pytest.raises(ValueError):
            PiecewiseLinearApproximation(
                [Segment(5.0, [0.0], 6.0, [1.0]), Segment(0.0, [0.0], 1.0, [1.0])]
            )

    def test_interpolation_inside_segment(self):
        approx = make_pla()
        assert approx.value_at(5.0)[0] == pytest.approx(5.0)
        assert approx.value_at(16.0)[0] == pytest.approx(2.0)

    def test_segment_boundaries(self):
        approx = make_pla()
        assert approx.value_at(10.0)[0] == pytest.approx(10.0)
        assert approx.value_at(20.0)[0] == pytest.approx(4.0)

    def test_extrapolation_before_and_after(self):
        approx = make_pla()
        assert approx.value_at(-1.0)[0] == pytest.approx(-1.0)
        assert approx.value_at(35.0)[0] == pytest.approx(4.0)

    def test_gap_times_use_next_segment(self):
        approx = make_pla()
        # 11.0 falls in the gap; the second segment extrapolates backwards.
        assert approx.value_at(11.0)[0] == pytest.approx(-0.5)

    def test_values_at_matches_value_at(self):
        approx = make_pla()
        times = [0.0, 3.0, 15.0, 25.0]
        batch = approx.values_at(times)
        single = np.array([approx.value_at(t) for t in times])
        assert np.allclose(batch, single)

    def test_counts(self):
        approx = make_pla()
        assert approx.segment_count == 3
        assert approx.connected_count() == 1
        assert approx.start_time == 0.0
        assert approx.end_time == 30.0
        assert approx.dimensions == 1

    def test_error_metrics(self):
        approx = PiecewiseLinearApproximation([Segment(0.0, [0.0], 10.0, [10.0])])
        points = [(0.0, 0.5), (5.0, 5.0), (10.0, 9.0)]
        assert approx.max_absolute_error(points) == pytest.approx(1.0)
        assert approx.mean_absolute_error(points) == pytest.approx(0.5)
        assert approx.within_bound(points, 1.0)
        assert not approx.within_bound(points, 0.4)

    def test_empty_points_error_zero(self):
        approx = make_pla()
        assert approx.max_absolute_error([]) == 0.0
        assert approx.mean_absolute_error([]) == 0.0
        assert approx.within_bound([], 0.0)


class TestPiecewiseConstant:
    def test_holds_until_next_step(self):
        approx = PiecewiseConstantApproximation([0.0, 5.0], [[1.0], [2.0]])
        assert approx.value_at(0.0)[0] == 1.0
        assert approx.value_at(4.999)[0] == 1.0
        assert approx.value_at(5.0)[0] == 2.0

    def test_before_first_step_uses_first_value(self):
        approx = PiecewiseConstantApproximation([0.0], [[3.0]])
        assert approx.value_at(-10.0)[0] == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseConstantApproximation([], [])
        with pytest.raises(ValueError):
            PiecewiseConstantApproximation([0.0, 0.0], [[1.0], [2.0]])
        with pytest.raises(ValueError):
            PiecewiseConstantApproximation([0.0], [[1.0], [2.0]])

    def test_values_at_vectorized(self):
        approx = PiecewiseConstantApproximation([0.0, 2.0, 4.0], [[0.0], [1.0], [2.0]])
        values = approx.values_at([0.5, 2.5, 4.5, 10.0])
        assert values.ravel().tolist() == [0.0, 1.0, 2.0, 2.0]

    def test_multidimensional(self):
        approx = PiecewiseConstantApproximation([0.0, 1.0], [[1.0, 2.0], [3.0, 4.0]])
        assert approx.dimensions == 2
        assert approx.value_at(0.5).tolist() == [1.0, 2.0]

    def test_step_count(self):
        approx = PiecewiseConstantApproximation([0.0, 1.0, 2.0], [[1.0], [2.0], [3.0]])
        assert approx.step_count == 3
        assert approx.steps == (0.0, 1.0, 2.0)


class TestHelpers:
    def test_approximate_points(self):
        approx = PiecewiseLinearApproximation([Segment(0.0, [0.0], 10.0, [10.0])])
        sampled = approximate_points(approx, [(2.0, 99.0), (4.0, 99.0)])
        assert sampled[0].component(0) == pytest.approx(2.0)
        assert sampled[1].component(0) == pytest.approx(4.0)
