"""Shared harness for crash, kill and fault-injection tests.

Collects the helpers the durability suites have in common: deterministic
workloads, bit-level store comparison, spawning child processes that are
expected to die hard (``os._exit``), and running library code in a child
with a :mod:`repro.testing.faults` plan installed from the environment.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import subprocess
import sys
from pathlib import Path

import numpy as np

from repro.testing import faults

REPO_SRC = str(Path(__file__).resolve().parent.parent / "src")


def make_workload(seed: int, length: int = 6000):
    """Deterministic random-walk workload (same for every call with a seed)."""
    rng = np.random.default_rng(seed)
    times = np.arange(length, dtype=float)
    values = np.cumsum(rng.normal(0.0, 1.0, length))
    return times, values


def load_workload(seed: int, length: int = 6000):
    """Module-level loader so StreamTask can ship it to worker processes."""
    return make_workload(seed, length)


def assert_stores_identical(first, second):
    """Every stream readable from both stores, record-for-record equal."""
    assert first.stream_names() == second.stream_names()
    for name in first.stream_names():
        left, right = first.read(name), second.read(name)
        assert len(left) == len(right)
        for a, b in zip(left, right):
            assert a.time == b.time
            assert a.kind == b.kind
            np.testing.assert_array_equal(a.value, b.value)


def store_log_digest(directory) -> dict:
    """Hash every log file under a store directory (bit-level comparison)."""
    digests = {}
    for path in sorted(Path(directory).rglob("*.seg")):
        digests[path.relative_to(directory).as_posix()] = hashlib.blake2b(
            path.read_bytes()
        ).hexdigest()
    return digests


def spawn_expecting_exit(target, args, exitcode, timeout=120):
    """Run ``target(*args)`` in a spawned child and assert its exit code."""
    context = multiprocessing.get_context("spawn")
    child = context.Process(target=target, args=args)
    child.start()
    child.join(timeout=timeout)
    assert child.exitcode == exitcode, (
        f"child exited with {child.exitcode}, expected {exitcode}"
    )


def run_python_with_faults(code: str, injector=None, timeout=120, env=None):
    """Run a Python snippet in a subprocess, optionally under a fault plan.

    The plan travels via ``REPRO_FAULT_PLAN``; :mod:`repro.testing.faults`
    installs it on import, so the child needs no cooperation beyond
    importing the library.  Returns the ``CompletedProcess``.
    """
    child_env = dict(os.environ)
    child_env["PYTHONPATH"] = REPO_SRC + os.pathsep + child_env.get("PYTHONPATH", "")
    if injector is not None:
        child_env.update(faults.plan_env(injector))
    if env:
        child_env.update(env)
    return subprocess.run(
        [sys.executable, "-c", code],
        env=child_env,
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def trace_operation(operation):
    """Run ``operation`` with a pass-through injector; return the I/O trace.

    The trace — one ``(op, path)`` tuple per interceptable I/O call — is
    what a crash matrix enumerates: injecting a fault at every index of the
    trace exercises a failure between every pair of I/O instructions.
    """
    injector = faults.FaultInjector([])
    faults.install(injector)
    try:
        operation()
    finally:
        faults.uninstall()
    return list(injector.trace)


def run_with_fault(operation, rule):
    """Run ``operation`` with one :class:`faults.FaultRule` armed.

    Returns the exception the injected fault caused (or ``None`` when the
    operation swallowed it / the rule never fired).
    """
    injector = faults.FaultInjector([rule])
    faults.install(injector)
    try:
        operation()
        return None
    except BaseException as exc:  # noqa: BLE001 - the matrix inspects it
        return exc
    finally:
        faults.uninstall()
