"""Tests for the hash-partitioned sharded store and the open_store factory."""

import json

import numpy as np
import pytest

from repro.core.slide import SlideFilter
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.storage import (
    DEFAULT_SHARDS,
    SegmentStore,
    ShardedStore,
    open_store,
    shard_index,
)


def compressed_walk(seed, length=400, epsilon=0.5):
    times, values = random_walk(RandomWalkConfig(length=length, max_delta=1.0, seed=seed))
    return times, values, SlideFilter(epsilon).process(zip(times, values)).recordings


def assert_identical(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.time == b.time
        assert a.kind == b.kind
        assert np.array_equal(a.value, b.value)


@pytest.fixture
def fleet():
    return {f"host-{i}/load": compressed_walk(100 + i) for i in range(8)}


class TestSharding:
    def test_shard_index_is_stable_and_in_range(self):
        for shards in (1, 3, 4, 16):
            for name in ("a", "host-1/load", "äöü", ""):
                index = shard_index(name, shards)
                assert 0 <= index < shards
                assert index == shard_index(name, shards)

    def test_streams_land_on_their_shard(self, tmp_path, fleet):
        store = ShardedStore(tmp_path / "sh", 4)
        for name, (_, _, recordings) in fleet.items():
            store.append(name, recordings)
        for name in fleet:
            shard = store.shard_for(name)
            assert name in shard
            assert name in store
        assert len(store) == len(fleet)
        assert store.stream_names() == sorted(fleet)

    def test_round_trip_equivalence_across_shard_counts(self, tmp_path, fleet):
        """read() / reconstruct() must be bit-identical across a single
        store and sharded stores with 1 and 4 shards."""
        single = SegmentStore(tmp_path / "single")
        sharded_1 = ShardedStore(tmp_path / "s1", 1)
        sharded_4 = ShardedStore(tmp_path / "s4", 4)
        for name, (_, _, recordings) in fleet.items():
            for store in (single, sharded_1, sharded_4):
                store.append(name, recordings, epsilon=0.5)
        for name, (times, _, _) in fleet.items():
            lo, hi = float(times[100]), float(times[300])
            reference_full = single.read(name)
            reference_range = single.read(name, lo, hi)
            grid = np.linspace(lo, hi, 50)
            reference_values = single.reconstruct(name, lo, hi).values_at(grid)
            for store in (sharded_1, sharded_4):
                assert_identical(store.read(name), reference_full)
                assert_identical(store.read(name, lo, hi), reference_range)
                np.testing.assert_array_equal(
                    store.reconstruct(name, lo, hi).values_at(grid), reference_values
                )

    def test_unified_catalog_view(self, tmp_path, fleet):
        store = ShardedStore(tmp_path / "sh", 4)
        for name, (_, _, recordings) in fleet.items():
            store.append(name, recordings, epsilon=0.5)
        entries = store.streams()
        assert [entry.name for entry in entries] == sorted(fleet)
        assert store.total_bytes() == sum(s.total_bytes() for s in store.shards)
        assert store.total_bytes() > 0
        entry = store.describe("host-0/load")
        assert entry.recordings == len(fleet["host-0/load"][2])

    def test_describe_and_delete_unknown(self, tmp_path):
        store = ShardedStore(tmp_path / "sh", 4)
        with pytest.raises(KeyError):
            store.describe("missing")
        with pytest.raises(KeyError):
            store.delete("missing")

    def test_delete_removes_from_owning_shard(self, tmp_path, fleet):
        store = ShardedStore(tmp_path / "sh", 4)
        for name, (_, _, recordings) in fleet.items():
            store.append(name, recordings)
        victim = next(iter(fleet))
        store.delete(victim)
        assert victim not in store
        assert len(store) == len(fleet) - 1


class TestPersistence:
    def test_reopen_preserves_shard_count_and_data(self, tmp_path, fleet):
        with ShardedStore(tmp_path / "sh", 3, autoflush=False) as store:
            for name, (_, _, recordings) in fleet.items():
                store.append(name, recordings)
        reopened = ShardedStore(tmp_path / "sh")
        assert reopened.shard_count == 3
        assert reopened.stream_names() == sorted(fleet)
        for name, (_, _, recordings) in fleet.items():
            assert_identical(reopened.read(name), list(recordings))

    def test_shard_count_mismatch_rejected(self, tmp_path):
        ShardedStore(tmp_path / "sh", 4)
        with pytest.raises(ValueError, match="4 shards"):
            ShardedStore(tmp_path / "sh", 8)

    def test_invalid_shard_count(self, tmp_path):
        with pytest.raises(ValueError):
            ShardedStore(tmp_path / "sh", 0)

    def test_meta_file_written_once(self, tmp_path):
        store = ShardedStore(tmp_path / "sh", 2)
        payload = json.loads((tmp_path / "sh" / ShardedStore.META_NAME).read_text())
        assert payload["shards"] == 2
        assert store.shard_count == 2


class TestReadMany:
    def test_read_many_matches_serial_reads(self, tmp_path, fleet):
        store = ShardedStore(tmp_path / "sh", 4)
        for name, (_, _, recordings) in fleet.items():
            store.append(name, recordings)
        lo = 50.0
        hi = 250.0
        results = store.read_many(list(fleet), start=lo, end=hi)
        assert sorted(results) == sorted(fleet)
        for name in fleet:
            assert_identical(results[name], store.read(name, lo, hi))

    def test_read_many_single_shard(self, tmp_path, fleet):
        store = ShardedStore(tmp_path / "sh", 1)
        for name, (_, _, recordings) in fleet.items():
            store.append(name, recordings)
        results = store.read_many(list(fleet))
        for name in fleet:
            assert_identical(results[name], store.read(name))


class TestOpenStore:
    def test_opens_plain_store_by_default(self, tmp_path):
        store = open_store(tmp_path / "plain")
        assert isinstance(store, SegmentStore)

    def test_creates_sharded_store_on_request(self, tmp_path):
        store = open_store(tmp_path / "sh", shards=4)
        assert isinstance(store, ShardedStore)
        assert store.shard_count == 4

    def test_reopens_sharded_store_without_shard_count(self, tmp_path):
        open_store(tmp_path / "sh", shards=2)
        store = open_store(tmp_path / "sh")
        assert isinstance(store, ShardedStore)
        assert store.shard_count == 2

    def test_rejects_sharding_an_existing_plain_store(self, tmp_path):
        from repro.core.types import Recording, RecordingKind

        plain = SegmentStore(tmp_path / "plain")
        plain.append("s", [Recording(0.0, 1.0, RecordingKind.HOLD)])
        open_store(tmp_path / "plain")  # fine without shards
        with pytest.raises(ValueError, match="not sharded"):
            open_store(tmp_path / "plain", shards=4)

    def test_default_shard_count(self, tmp_path):
        assert ShardedStore(tmp_path / "sh").shard_count == DEFAULT_SHARDS


class TestReadManyExecutors:
    def test_process_executor_matches_thread(self, tmp_path, fleet):
        store = ShardedStore(tmp_path / "sh", 4)
        for name, (_, _, recordings) in fleet.items():
            store.append(name, recordings)
        names = sorted(fleet)
        thread = store.read_many(names)
        process = store.read_many(names, executor="process")
        assert sorted(process) == names
        for name in names:
            assert_identical(thread[name], process[name])

    def test_process_executor_range_read(self, tmp_path, fleet):
        store = ShardedStore(tmp_path / "sh", 3)
        for name, (_, _, recordings) in fleet.items():
            store.append(name, recordings)
        names = sorted(fleet)
        lo, hi = 100.0, 250.0
        process = store.read_many(names, lo, hi, executor="process")
        for name in names:
            assert_identical(process[name], store.read(name, lo, hi))

    def test_rejects_unknown_executor(self, tmp_path, fleet):
        store = ShardedStore(tmp_path / "sh", 2)
        with pytest.raises(ValueError, match="executor"):
            store.read_many([], executor="coroutine")

    def test_fails_fast_on_unknown_stream(self, tmp_path):
        store = ShardedStore(tmp_path / "sh", 2)
        with pytest.raises(KeyError):
            store.read_many(["ghost"], executor="process")


class TestShardedMaintenance:
    def test_truncate_stream_routes_to_owning_shard(self, tmp_path, fleet):
        store = ShardedStore(tmp_path / "sh", 4)
        for name, (_, _, recordings) in fleet.items():
            store.append(name, recordings)
        victim = sorted(fleet)[0]
        total = store.describe(victim).recordings
        store.truncate_stream(victim, total - 5)
        assert store.describe(victim).recordings == total - 5
        # The other streams are untouched.
        for name, (_, _, recordings) in fleet.items():
            if name != victim:
                assert store.describe(name).recordings == len(recordings)

    def test_compact_all_shards(self, tmp_path, fleet):
        small = ShardedStore(tmp_path / "sh", 2, block_records=4)
        for name, (_, _, recordings) in fleet.items():
            small.append(name, recordings)
        small.close()
        store = ShardedStore(tmp_path / "sh")
        rebuilt = store.compact()
        assert sorted(rebuilt) == sorted(fleet)
        for name, (_, _, recordings) in fleet.items():
            assert_identical(store.read(name), list(recordings))

    def test_compact_one_stream(self, tmp_path, fleet):
        small = ShardedStore(tmp_path / "sh", 2, block_records=4)
        for name, (_, _, recordings) in fleet.items():
            small.append(name, recordings)
        small.close()
        store = ShardedStore(tmp_path / "sh")
        target = sorted(fleet)[0]
        rebuilt = store.compact(target)
        assert list(rebuilt) == [target]
