"""Tests for recording-stream reconstruction."""

import numpy as np
import pytest

from repro.approximation.piecewise import (
    PiecewiseConstantApproximation,
    PiecewiseLinearApproximation,
)
from repro.approximation.reconstruct import (
    reconstruct,
    recordings_per_segment,
    segments_from_recordings,
)
from repro.core.types import Recording, RecordingKind


def rec(time, value, kind):
    return Recording(time, value, kind)


class TestSegmentsFromRecordings:
    def test_single_disconnected_segment(self):
        records = [
            rec(0.0, 1.0, RecordingKind.SEGMENT_START),
            rec(5.0, 2.0, RecordingKind.SEGMENT_END),
        ]
        segments = segments_from_recordings(records)
        assert len(segments) == 1
        assert not segments[0].connected_to_previous
        assert segments[0].duration == 5.0

    def test_connected_chain(self):
        records = [
            rec(0.0, 1.0, RecordingKind.SEGMENT_START),
            rec(5.0, 2.0, RecordingKind.SEGMENT_END),
            rec(9.0, 0.0, RecordingKind.SEGMENT_END),
        ]
        segments = segments_from_recordings(records)
        assert len(segments) == 2
        assert segments[1].connected_to_previous
        assert segments[1].start_time == 5.0

    def test_mixed_connected_and_disconnected(self):
        records = [
            rec(0.0, 1.0, RecordingKind.SEGMENT_START),
            rec(5.0, 2.0, RecordingKind.SEGMENT_END),
            rec(6.0, 10.0, RecordingKind.SEGMENT_START),
            rec(9.0, 12.0, RecordingKind.SEGMENT_END),
            rec(12.0, 13.0, RecordingKind.SEGMENT_END),
        ]
        segments = segments_from_recordings(records)
        assert [s.connected_to_previous for s in segments] == [False, False, True]

    def test_trailing_start_becomes_point_segment(self):
        records = [
            rec(0.0, 1.0, RecordingKind.SEGMENT_START),
            rec(5.0, 2.0, RecordingKind.SEGMENT_END),
            rec(6.0, 9.0, RecordingKind.SEGMENT_START),
        ]
        segments = segments_from_recordings(records)
        assert len(segments) == 2
        assert segments[1].duration == 0.0

    def test_hold_recordings_rejected(self):
        with pytest.raises(ValueError):
            segments_from_recordings([rec(0.0, 1.0, RecordingKind.HOLD)])

    def test_leading_end_anchors_partial_stream(self):
        # A time-range read from a store may start with an end recording: it
        # produces no segment itself but anchors the next connected one.
        records = [
            rec(0.0, 1.0, RecordingKind.SEGMENT_END),
            rec(4.0, 3.0, RecordingKind.SEGMENT_END),
        ]
        segments = segments_from_recordings(records)
        assert len(segments) == 1
        assert segments[0].start_time == 0.0
        assert segments[0].connected_to_previous

    def test_lone_end_recording_yields_no_segments(self):
        assert segments_from_recordings([rec(0.0, 1.0, RecordingKind.SEGMENT_END)]) == []

    def test_recordings_per_segment_accounting(self):
        records = [
            rec(0.0, 1.0, RecordingKind.SEGMENT_START),
            rec(5.0, 2.0, RecordingKind.SEGMENT_END),
            rec(9.0, 0.0, RecordingKind.SEGMENT_END),
            rec(10.0, 5.0, RecordingKind.SEGMENT_START),
            rec(12.0, 6.0, RecordingKind.SEGMENT_END),
        ]
        segments = segments_from_recordings(records)
        assert recordings_per_segment(segments) == len(records)


class TestReconstruct:
    def test_constant_family(self):
        records = [rec(0.0, 1.0, RecordingKind.HOLD), rec(3.0, 2.0, RecordingKind.HOLD)]
        approx = reconstruct(records)
        assert isinstance(approx, PiecewiseConstantApproximation)
        assert approx.value_at(2.9)[0] == 1.0
        assert approx.value_at(3.0)[0] == 2.0

    def test_linear_family(self):
        records = [
            rec(0.0, 0.0, RecordingKind.SEGMENT_START),
            rec(4.0, 8.0, RecordingKind.SEGMENT_END),
        ]
        approx = reconstruct(records)
        assert isinstance(approx, PiecewiseLinearApproximation)
        assert approx.value_at(2.0)[0] == pytest.approx(4.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            reconstruct([])

    def test_mixed_kinds_rejected(self):
        with pytest.raises(ValueError):
            reconstruct(
                [rec(0.0, 1.0, RecordingKind.HOLD), rec(1.0, 1.0, RecordingKind.SEGMENT_START)]
            )

    def test_accepts_filter_result(self):
        from repro.core.swing import SwingFilter

        result = SwingFilter(0.5).process([(0.0, 0.0), (1.0, 0.1), (2.0, 0.2)])
        approx = reconstruct(result)
        assert isinstance(approx, PiecewiseLinearApproximation)

    def test_multidimensional_reconstruction(self):
        records = [
            rec(0.0, [0.0, 10.0], RecordingKind.SEGMENT_START),
            rec(2.0, [2.0, 6.0], RecordingKind.SEGMENT_END),
        ]
        approx = reconstruct(records)
        value = approx.value_at(1.0)
        assert value[0] == pytest.approx(1.0)
        assert value[1] == pytest.approx(8.0)
