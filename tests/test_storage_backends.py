"""Tests for the block-indexed storage backend: index maintenance, pruned
range reads, durability/recovery, old-format migration and filename safety."""

import json
import struct

import numpy as np
import pytest

from repro.core.types import Recording, RecordingKind
from repro.storage import SegmentStore, available_backends, get_backend
from repro.storage.backends.base import range_indices, record_dtype, record_size
from repro.storage.segment_store import _CATALOG_VERSION, _legacy_filename


def make_recordings(count, dimensions=1, start_time=0.0):
    recordings = []
    for index in range(count):
        value = [float(index) * 0.5 + dim for dim in range(dimensions)]
        kind = RecordingKind.SEGMENT_START if index == 0 else RecordingKind.SEGMENT_END
        recordings.append(Recording(start_time + index, value, kind))
    return recordings


def times_of(recordings):
    return [record.time for record in recordings]


def assert_identical(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.time == b.time
        assert a.kind == b.kind
        assert np.array_equal(a.value, b.value)


class TestRecordFormat:
    def test_dtype_matches_struct_layout(self):
        for dimensions in (1, 2, 5):
            assert record_dtype(dimensions).itemsize == struct.calcsize(f"<Bd{dimensions}d")
            assert record_size(dimensions) == struct.calcsize(f"<Bd{dimensions}d")

    def test_struct_written_bytes_decode_identically(self, tmp_path):
        """Bytes produced by the seed's struct packer decode to the same
        recordings through the vectorized path."""
        store = SegmentStore(tmp_path / "s")
        recordings = make_recordings(50, dimensions=3)
        store.append("stream", recordings)
        packer = struct.Struct("<Bd3d")
        raw = store._log_path("stream").read_bytes()
        decoded = store.read("stream")
        for index, record in enumerate(decoded):
            fields = packer.unpack_from(raw, index * packer.size)
            assert fields[1] == record.time
            assert np.array_equal(np.asarray(fields[2:]), record.value)


class TestRangeIndices:
    def test_no_range_returns_all(self):
        times = np.arange(10.0)
        assert range_indices(times, None, None).tolist() == list(range(10))

    def test_keeps_covering_records(self):
        times = np.arange(10.0)
        assert range_indices(times, 3.5, 6.5).tolist() == [3, 4, 5, 6, 7]

    def test_exact_boundaries(self):
        times = np.arange(10.0)
        assert range_indices(times, 3.0, 6.0).tolist() == [2, 3, 4, 5, 6, 7]

    def test_open_ended(self):
        times = np.arange(10.0)
        assert range_indices(times, 7.5, None).tolist() == [7, 8, 9]
        assert range_indices(times, None, 2.5).tolist() == [0, 1, 2, 3]

    def test_range_outside_span(self):
        times = np.arange(10.0)
        assert range_indices(times, 50.0, 60.0).tolist() == [9]
        assert range_indices(times, -5.0, -1.0).tolist() == [0]

    def test_range_inside_one_gap(self):
        times = np.array([0.0, 10.0])
        assert range_indices(times, 4.0, 6.0).tolist() == [0, 1]


class TestBlockIndex:
    def test_blocks_are_bounded_and_cover_log(self, tmp_path):
        store = SegmentStore(tmp_path / "s", block_records=16)
        store.append("stream", make_recordings(100))
        store.append("stream", make_recordings(30, start_time=100.0))
        entry = store.describe("stream")
        assert sum(block[1] for block in entry.blocks) == 130
        assert all(block[1] <= 16 for block in entry.blocks)
        # Blocks tile the file contiguously.
        size = record_size(1)
        expected_offset = 0
        for offset, count, min_time, max_time, summary in entry.blocks:
            assert offset == expected_offset
            assert min_time <= max_time
            assert summary is not None and summary["first"] and summary["last"]
            expected_offset += count * size

    def test_small_appends_coalesce_into_blocks(self, tmp_path):
        """Per-recording appends must not create per-recording blocks."""
        store = SegmentStore(tmp_path / "s", block_records=16)
        for record in make_recordings(40):
            store.append("stream", [record])
        assert len(store.describe("stream").blocks) == int(np.ceil(40 / 16))

    def test_pruned_range_reads_match_full_scan(self, tmp_path):
        store = SegmentStore(tmp_path / "s", block_records=8)
        recordings = make_recordings(200)
        store.append("stream", recordings)
        rng = np.random.default_rng(3)
        for _ in range(25):
            start, end = np.sort(rng.uniform(-10.0, 210.0, 2))
            expected = [recordings[i] for i in range_indices(np.arange(200.0), start, end)]
            assert_identical(store.read("stream", start, end), expected)

    def test_multidimensional_range_read(self, tmp_path):
        store = SegmentStore(tmp_path / "s", block_records=8)
        recordings = make_recordings(64, dimensions=4)
        store.append("stream", recordings)
        subset = store.read("stream", 10.5, 20.5)
        assert times_of(subset) == [10.0] + list(np.arange(11.0, 21.0)) + [21.0]
        for record in subset:
            assert np.array_equal(record.value, recordings[int(record.time)].value)


class TestDurabilityAndRecovery:
    def test_deferred_flush_does_not_rewrite_catalog_per_append(self, tmp_path):
        store = SegmentStore(tmp_path / "s", autoflush=False)
        store.append("stream", make_recordings(5))
        registered = (tmp_path / "s" / "catalog.json").read_text()
        store.append("stream", make_recordings(5, start_time=5.0))
        assert (tmp_path / "s" / "catalog.json").read_text() == registered
        store.flush()
        assert (tmp_path / "s" / "catalog.json").read_text() != registered

    def test_context_manager_flushes(self, tmp_path):
        with SegmentStore(tmp_path / "s", autoflush=False) as store:
            store.append("stream", make_recordings(7))
        payload = json.loads((tmp_path / "s" / "catalog.json").read_text())
        assert payload["streams"][0]["recordings"] == 7

    def test_reopen_recovers_unflushed_appends(self, tmp_path):
        """Log bytes whose catalog update was never flushed are re-indexed."""
        store = SegmentStore(tmp_path / "s", autoflush=False, block_records=8)
        recordings = make_recordings(30)
        store.append("stream", recordings)
        # No flush: the on-disk catalog still says 0 recordings.
        reopened = SegmentStore(tmp_path / "s", block_records=8)
        entry = reopened.describe("stream")
        assert entry.recordings == 30
        assert entry.first_time == 0.0 and entry.last_time == 29.0
        assert_identical(reopened.read("stream"), recordings)

    def test_reopen_clamps_partially_flushed_log(self, tmp_path):
        """Catalog written, log truncated mid-record by a crash: the store
        clamps to the last complete record instead of failing."""
        store = SegmentStore(tmp_path / "s", block_records=8)
        store.append("stream", make_recordings(30))
        log_path = store._log_path("stream")
        size = record_size(1)
        with open(log_path, "rb+") as log:
            log.truncate(20 * size + size // 2)  # 20 records + half a record
        reopened = SegmentStore(tmp_path / "s", block_records=8)
        entry = reopened.describe("stream")
        assert entry.recordings == 20
        assert entry.last_time == 19.0
        assert times_of(reopened.read("stream")) == list(np.arange(20.0))
        # Recovery dropped the partial record's bytes from the log, so later
        # appends stay aligned with the indexed records.
        assert log_path.stat().st_size == 20 * size
        reopened.append("stream", make_recordings(5, start_time=20.0))
        assert reopened.describe("stream").recordings == 25
        # The full log — old records, clamp point and new records — decodes
        # cleanly, including ranges spanning the clamp boundary.
        assert times_of(reopened.read("stream")) == list(np.arange(25.0))
        assert times_of(reopened.read("stream", 18.5, 21.5)) == [18.0, 19.0, 20.0, 21.0, 22.0]

    def test_seed_format_store_is_readable_and_upgraded(self, tmp_path):
        """A store written by the seed implementation (per-record struct log,
        v1 catalog without filename/blocks) opens, reads and gets indexed."""
        directory = tmp_path / "legacy"
        directory.mkdir()
        packer = struct.Struct("<Bd1d")
        with open(directory / "old_stream.seg", "wb") as log:
            for index in range(40):
                log.write(packer.pack(1 if index else 0, float(index), index * 0.5))
        catalog = {
            "streams": [
                {
                    "name": "old/stream",
                    "dimensions": 1,
                    "recordings": 40,
                    "first_time": 0.0,
                    "last_time": 39.0,
                    "epsilon": [0.5],
                }
            ]
        }
        (directory / "catalog.json").write_text(json.dumps(catalog))

        store = SegmentStore(directory, block_records=16)
        entry = store.describe("old/stream")
        assert entry.filename == "old_stream.seg" == _legacy_filename("old/stream")
        assert entry.blocks and sum(block[1] for block in entry.blocks) == 40
        assert times_of(store.read("old/stream", 10.5, 12.5)) == [10.0, 11.0, 12.0, 13.0]
        upgraded = json.loads((directory / "catalog.json").read_text())
        assert upgraded["version"] == _CATALOG_VERSION
        assert upgraded["streams"][0]["blocks"]

    def test_roundtrip_bit_identical_after_reopen(self, tmp_path):
        recordings = make_recordings(100, dimensions=2)
        with SegmentStore(tmp_path / "s", autoflush=False) as store:
            store.append("stream", recordings, epsilon=[0.5, 0.5])
        reopened = SegmentStore(tmp_path / "s")
        assert_identical(reopened.read("stream"), recordings)


class TestFilenames:
    def test_sanitization_collisions_get_distinct_files(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        store.append("a/b", make_recordings(5))
        store.append("a_b", make_recordings(3))
        entry_slash = store.describe("a/b")
        entry_under = store.describe("a_b")
        assert entry_slash.filename != entry_under.filename
        assert len(store.read("a/b")) == 5
        assert len(store.read("a_b")) == 3
        reopened = SegmentStore(tmp_path / "s")
        assert len(reopened.read("a/b")) == 5
        assert len(reopened.read("a_b")) == 3

    def test_filename_persisted_in_catalog(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        store.append("a/b", make_recordings(2))
        payload = json.loads((tmp_path / "s" / "catalog.json").read_text())
        filename = payload["streams"][0]["filename"]
        assert (tmp_path / "s" / filename).exists()


class TestAppendSemantics:
    def test_empty_append_does_not_register_unknown_stream(self, tmp_path):
        """The seed fabricated a 1-dimensional stream here; registration is
        now deferred until real recordings arrive."""
        store = SegmentStore(tmp_path / "s")
        assert store.append("ghost", []) is None
        assert "ghost" not in store
        # The stream can later be created with its true dimensionality.
        store.append("ghost", make_recordings(3, dimensions=2))
        assert store.describe("ghost").dimensions == 2

    def test_failed_first_append_leaves_no_stream(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        bad = [Recording(5.0, 1.0, RecordingKind.HOLD), Recording(1.0, 2.0, RecordingKind.HOLD)]
        with pytest.raises(ValueError):
            store.append("stream", bad)
        assert "stream" not in store

    def test_append_arrays_matches_append(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        recordings = make_recordings(25, dimensions=2)
        store.append("objects", recordings)
        kinds = [record.kind for record in recordings]
        times = [record.time for record in recordings]
        values = np.vstack([record.value for record in recordings])
        store.append_arrays("arrays", times, values, kinds=kinds)
        assert_identical(store.read("arrays"), store.read("objects"))

    def test_append_arrays_validates_shapes_and_order(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        with pytest.raises(ValueError):
            store.append_arrays("stream", [0.0, 1.0], [[1.0], [2.0], [3.0]])
        with pytest.raises(ValueError, match="time order"):
            store.append_arrays("stream", [1.0, 0.0], [1.0, 2.0])


class TestBackendRegistry:
    def test_block_log_is_registered(self):
        assert "block-log" in available_backends()
        backend = get_backend("block-log", block_records=32)
        assert backend.block_records == 32

    def test_unknown_backend(self):
        with pytest.raises(KeyError):
            get_backend("no-such-backend")

    def test_store_rejects_unknown_backend(self, tmp_path):
        with pytest.raises(KeyError):
            SegmentStore(tmp_path / "s", backend="no-such-backend")


class TestTruncateStream:
    def test_truncate_drops_records_and_index(self, tmp_path):
        store = SegmentStore(tmp_path / "s", block_records=8)
        store.append("stream", make_recordings(50))
        entry = store.truncate_stream("stream", 20)
        assert entry.recordings == 20
        assert entry.last_time == 19.0
        assert sum(block[1] for block in entry.blocks) == 20
        assert times_of(store.read("stream")) == [float(t) for t in range(20)]

    def test_truncate_beyond_length_is_noop(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        store.append("stream", make_recordings(10))
        store.truncate_stream("stream", 99)
        assert store.describe("stream").recordings == 10

    def test_truncate_to_zero(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        store.append("stream", make_recordings(10))
        entry = store.truncate_stream("stream", 0)
        assert entry.recordings == 0
        assert entry.first_time is None and entry.last_time is None
        assert store.read("stream") == []

    def test_appends_continue_after_truncate(self, tmp_path):
        store = SegmentStore(tmp_path / "s", block_records=8)
        store.append("stream", make_recordings(30))
        store.truncate_stream("stream", 12)
        store.append("stream", make_recordings(10, start_time=12.0))
        assert store.describe("stream").recordings == 22
        assert times_of(store.read("stream")) == [float(t) for t in range(22)]

    def test_truncate_persists_across_reopen(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        store.append("stream", make_recordings(40))
        store.truncate_stream("stream", 15)
        store.close()
        reopened = SegmentStore(tmp_path / "s")
        assert reopened.describe("stream").recordings == 15

    def test_truncate_with_corrupt_index_respects_indexed_ranges(self, tmp_path):
        """With a hole in the index the byte cutoff must come from the kept
        index, not keep_records * size (which would land inside the gap)."""
        store = SegmentStore(tmp_path / "s", block_records=10)
        store.append("stream", make_recordings(30))
        entry = store.describe("stream")
        del entry.blocks[1]  # simulate index corruption: a hole in the log
        entry.recordings = 20
        entry = store.truncate_stream("stream", 15)
        # The cut lands at the end of the last kept indexed range (25 * size,
        # not 15 * size, which would be inside the second block's data).
        assert entry.recordings == 15
        assert [block[:4] for block in entry.blocks] == [
            [0, 10, 0.0, 9.0],
            [20 * record_size(1), 5, 20.0, 24.0],
        ]
        assert store._log_path("stream").stat().st_size == 25 * record_size(1)
        # Compaction then repairs the hole; the indexed records survive.
        store.compact("stream")
        assert times_of(store.read("stream")) == [float(t) for t in range(10)] + [
            float(t) for t in range(20, 25)
        ]

    def test_truncate_validates_arguments(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        store.append("stream", make_recordings(5))
        with pytest.raises(ValueError, match="non-negative"):
            store.truncate_stream("stream", -1)
        with pytest.raises(KeyError):
            store.truncate_stream("ghost", 0)


class TestCompaction:
    def test_compact_merges_small_blocks(self, tmp_path):
        small = SegmentStore(tmp_path / "s", block_records=8)
        small.append("stream", make_recordings(100))
        small.close()
        store = SegmentStore(tmp_path / "s")  # default (larger) block size
        before = store.read("stream")
        assert len(store.describe("stream").blocks) > 1
        rebuilt = store.compact("stream")
        assert rebuilt["stream"][0] > rebuilt["stream"][1]
        assert len(store.describe("stream").blocks) == 1
        assert_identical(store.read("stream"), before)

    def test_compact_of_packed_log_rebuilds_index_without_rewriting(self, tmp_path):
        """The log bytes of a fragmented-index stream are already packed;
        compaction must fix the index without touching the file."""
        small = SegmentStore(tmp_path / "s", block_records=8)
        small.append("stream", make_recordings(100))
        small.close()
        store = SegmentStore(tmp_path / "s")
        log_path = store._log_path("stream")
        stat_before = log_path.stat()
        assert store.compact("stream")
        stat_after = log_path.stat()
        assert stat_after.st_ino == stat_before.st_ino
        assert stat_after.st_mtime_ns == stat_before.st_mtime_ns

    def test_compact_is_idempotent(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        store.append("stream", make_recordings(100))
        assert store.compact() == {}

    def test_compact_all_streams(self, tmp_path):
        small = SegmentStore(tmp_path / "s", block_records=4)
        for name in ("a", "b"):
            small.append(name, make_recordings(40))
        small.close()
        store = SegmentStore(tmp_path / "s")
        rebuilt = store.compact()
        assert sorted(rebuilt) == ["a", "b"]

    def test_compact_preserves_range_reads(self, tmp_path):
        small = SegmentStore(tmp_path / "s", block_records=4)
        small.append("stream", make_recordings(200))
        small.close()
        store = SegmentStore(tmp_path / "s")
        expected = store.read("stream", 50.5, 120.5)
        store.compact()
        assert_identical(store.read("stream", 50.5, 120.5), expected)
        assert store.read("stream", 50.5, 120.5)[0].time <= 50.5

    def test_compact_splits_oversized_blocks(self, tmp_path):
        big = SegmentStore(tmp_path / "s", block_records=4096)
        big.append("stream", make_recordings(1000))
        big.close()
        store = SegmentStore(tmp_path / "s", block_records=100)
        rebuilt = store.compact()
        assert rebuilt["stream"] == (1, 10)

    def test_compact_repairs_corrupt_index_without_resurrecting_gaps(self, tmp_path):
        """A non-packed index (hole in the middle) is repaired by copying
        exactly the indexed byte ranges — the gap bytes must not come back
        as records, and the catalog must match the rebuilt index."""
        store = SegmentStore(tmp_path / "s", block_records=10)
        store.append("stream", make_recordings(30))
        entry = store.describe("stream")
        assert len(entry.blocks) == 3
        del entry.blocks[1]  # simulate index corruption: a hole in the log
        entry.recordings = 20
        rebuilt = store.compact("stream")
        assert "stream" in rebuilt
        entry = store.describe("stream")
        assert entry.recordings == 20
        recordings = store.read("stream")
        assert len(recordings) == 20
        assert times_of(recordings) == [float(t) for t in range(10)] + [
            float(t) for t in range(20, 30)
        ]
        # The rewritten log holds exactly the indexed records.
        assert store._log_path("stream").stat().st_size == 20 * record_size(1)

    def test_compact_persists_across_reopen(self, tmp_path):
        small = SegmentStore(tmp_path / "s", block_records=4)
        small.append("stream", make_recordings(64))
        small.close()
        store = SegmentStore(tmp_path / "s")
        store.compact()
        store.close()
        reopened = SegmentStore(tmp_path / "s")
        assert len(reopened.describe("stream").blocks) == 1
        assert_identical(reopened.read("stream"), make_recordings(64))


class TestSegmentStoreReadMany:
    def test_read_many_matches_single_reads(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        for name in ("a", "b", "c"):
            store.append(name, make_recordings(30))
        results = store.read_many(["a", "b", "c"], 5.5, 20.5)
        assert sorted(results) == ["a", "b", "c"]
        for name in results:
            assert_identical(results[name], store.read(name, 5.5, 20.5))

    def test_read_many_process_executor(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        for name in ("a", "b", "c", "d"):
            store.append(name, make_recordings(40, dimensions=2))
        thread = store.read_many(["a", "b", "c", "d"])
        process = store.read_many(["a", "b", "c", "d"], executor="process")
        for name in thread:
            assert_identical(thread[name], process[name])

    def test_read_many_rejects_unknown_executor(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        store.append("a", make_recordings(3))
        with pytest.raises(ValueError, match="executor"):
            store.read_many(["a"], executor="fiber")

    def test_read_many_fails_fast_on_unknown_stream(self, tmp_path):
        store = SegmentStore(tmp_path / "s")
        store.append("a", make_recordings(3))
        with pytest.raises(KeyError):
            store.read_many(["a", "ghost"])
