"""Tests for the experiment harness (fast, reduced-size configurations)."""

import numpy as np
import pytest

from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.evaluation.ablations import (
    connection_ablation,
    max_lag_ablation,
    recording_policy_ablation,
)
from repro.evaluation.dimensionality import (
    compression_vs_correlation,
    compression_vs_dimensions,
    independent_vs_joint_breakeven,
)
from repro.evaluation.experiments import ExperimentSeries, run_filters
from repro.evaluation.overhead import overhead_vs_precision
from repro.evaluation.precision_sweep import precision_sweep
from repro.evaluation.report import render_series, render_table, series_to_rows
from repro.evaluation.signal_behavior import compression_vs_delta, compression_vs_monotonicity
from repro.evaluation.summary import headline_claims


@pytest.fixture(scope="module")
def small_walk():
    return random_walk(RandomWalkConfig(length=600, decrease_probability=0.5, max_delta=1.0, seed=13))


class TestRunFilters:
    def test_runs_all_paper_filters(self, small_walk):
        times, values = small_walk
        runs = run_filters(times, values, epsilon=0.5)
        assert set(runs) == {"cache", "linear", "swing", "slide"}
        for run in runs.values():
            assert run.points == 600
            assert run.recordings >= 1
            assert run.max_absolute_error <= 0.5 + 1e-8
            assert run.compression_ratio == pytest.approx(run.points / run.recordings)

    def test_filter_subset_and_options(self, small_walk):
        times, values = small_walk
        runs = run_filters(
            times,
            values,
            epsilon=0.5,
            filters=["swing"],
            filter_options={"swing": {"max_lag": 20}},
        )
        assert list(runs) == ["swing"]

    def test_error_never_exceeds_epsilon(self, small_walk):
        times, values = small_walk
        for epsilon in (0.2, 1.0, 3.0):
            for run in run_filters(times, values, epsilon).values():
                assert run.max_absolute_error <= epsilon + 1e-8
                assert run.mean_absolute_error <= run.max_absolute_error


class TestExperimentSeries:
    def test_add_and_query(self):
        series = ExperimentSeries("t", "Title", "x", [1.0, 2.0], "y")
        series.add("swing", 1.5)
        series.add("swing", 2.5)
        series.add("slide", 2.0)
        series.add("slide", 3.0)
        assert series.filter_names() == ["swing", "slide"]
        assert series.best_filter_at(1) == "slide"
        payload = series.as_dict()
        assert payload["series"]["swing"] == [1.5, 2.5]

    def test_rendering(self):
        series = ExperimentSeries("t", "Title", "x", [1.0], "y")
        series.add("swing", 1.23456)
        rows = series_to_rows(series)
        assert rows[0] == ["x", "swing"]
        text = render_series(series)
        assert "Title" in text
        assert "swing" in text

    def test_render_table_alignment(self):
        text = render_table([["a", "bb"], ["ccc", "d"]])
        lines = text.splitlines()
        assert len(lines) == 3  # header, rule, one row
        assert "-+-" in lines[1]

    def test_render_empty(self):
        assert render_table([]) == ""


class TestFigureRunners:
    def test_precision_sweep_small(self, small_walk):
        times, values = small_walk
        compression, error = precision_sweep(times=times, values=values, percents=(1.0, 10.0))
        assert compression.x_values == [1.0, 10.0]
        assert set(compression.series) == {"cache", "linear", "swing", "slide"}
        for name in error.series:
            # Average error (in % of range) must stay below the precision width.
            for percent, value in zip(error.x_values, error.series[name]):
                assert value <= percent + 1e-9

    def test_compression_improves_with_larger_precision(self, small_walk):
        times, values = small_walk
        compression, _ = precision_sweep(times=times, values=values, percents=(1.0, 20.0))
        for series in compression.series.values():
            assert series[-1] >= series[0]

    def test_monotonicity_runner(self):
        series = compression_vs_monotonicity(probabilities=(0.0, 0.5), length=800, seed=1)
        assert len(series.x_values) == 2
        # Monotone signals compress better for the linear-family filters.
        assert series.series["slide"][0] > series.series["slide"][1]

    def test_delta_runner(self):
        series = compression_vs_delta(delta_percents=(10.0, 1000.0), length=800, seed=2)
        for name in ("swing", "slide"):
            assert series.series[name][0] > series.series[name][1]

    def test_dimensions_runner(self):
        series = compression_vs_dimensions(dimension_counts=(1, 4), length=600, seed=3)
        for name in ("cache", "linear", "swing", "slide"):
            assert series.series[name][0] >= series.series[name][1]

    def test_correlation_runner(self):
        series = compression_vs_correlation(correlations=(0.1, 1.0), length=600, seed=4)
        for name in ("swing", "slide"):
            assert series.series[name][1] >= series.series[name][0]

    def test_breakeven_analysis(self):
        analysis = independent_vs_joint_breakeven(
            correlations=(0.1, 1.0), length=500, seed=5
        )
        assert analysis.dimensions == 5
        assert analysis.independent_equivalent < analysis.single_dimension_ratio
        assert len(analysis.joint_ratios) == 2

    def test_overhead_runner_shape(self, small_walk):
        times, values = small_walk
        series = overhead_vs_precision(
            percents=(1.0, 10.0),
            filters=("swing", "slide"),
            times=times[:200],
            values=values[:200],
            repeats=1,
        )
        assert set(series.series) == {"swing", "slide"}
        assert all(v >= 0.0 for values_ in series.series.values() for v in values_)


class TestAblations:
    def test_recording_policy(self, sst_signal):
        times, values = sst_signal
        result = recording_policy_ablation(times=times, values=values, precision_percent=3.16)
        # The recording choice feeds back into the next interval's anchor, so
        # the counts may differ slightly — but not by much, and the MSE policy
        # must not lose on error.
        assert abs(result.recordings_mse - result.recordings_midslope) <= 0.05 * result.recordings_midslope
        assert result.mean_error_mse <= result.mean_error_midslope + 1e-12
        assert result.error_reduction_percent >= 0.0

    def test_connection_ablation(self, small_walk):
        times, values = small_walk
        series = connection_ablation(precision_percents=(5.0,), times=times, values=values)
        full = series.series["slide"][0]
        disconnected = series.series["slide-disconnected"][0]
        assert full >= disconnected
        assert 0.0 <= series.series["connected fraction (%)"][0] <= 100.0

    def test_max_lag_ablation(self):
        series = max_lag_ablation(max_lags=(4, None), length=1_000)
        for name in ("swing", "slide"):
            bounded, unbounded = series.series[name]
            assert unbounded >= bounded


class TestSummary:
    def test_headline_claims_structure(self, monkeypatch):
        # Patch the underlying sweeps with tiny workloads to keep this fast.
        import repro.evaluation.summary as summary

        def tiny_series(name, values_by_filter):
            series = ExperimentSeries(name, name, "x", [1.0], "y")
            for filter_name, value in values_by_filter.items():
                series.add(filter_name, value)
            return series

        sweeps = [
            tiny_series("a", {"cache": 1.0, "linear": 1.1, "swing": 1.5, "slide": 2.0}),
            tiny_series("b", {"cache": 2.0, "linear": 1.0, "swing": 2.5, "slide": 2.6}),
        ]
        monkeypatch.setattr(summary, "compression_vs_precision", lambda: sweeps[0])
        monkeypatch.setattr(summary, "compression_vs_monotonicity", lambda **kw: sweeps[1])
        monkeypatch.setattr(summary, "compression_vs_delta", lambda **kw: sweeps[0])
        monkeypatch.setattr(summary, "compression_vs_dimensions", lambda **kw: sweeps[1])
        monkeypatch.setattr(summary, "compression_vs_correlation", lambda **kw: sweeps[0])
        result = summary.headline_claims()
        assert result.configurations == 5
        assert len(result.checks) == 3
        assert all(check.fraction == 1.0 for check in result.checks)
        assert result.max_slide_improvement_over_baselines > 1.0
        rows = result.as_rows()
        assert rows[0][0] == "claim"
