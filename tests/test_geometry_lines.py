"""Unit tests for :mod:`repro.geometry.lines`."""

import math

import pytest

from repro.geometry.lines import Line


class TestConstruction:
    def test_from_points_slope_and_intercept(self):
        line = Line.from_points(0.0, 1.0, 2.0, 5.0)
        assert line.slope == pytest.approx(2.0)
        assert line.intercept == pytest.approx(1.0)

    def test_from_points_negative_slope(self):
        line = Line.from_points(1.0, 4.0, 3.0, 0.0)
        assert line.slope == pytest.approx(-2.0)
        assert line.value_at(2.0) == pytest.approx(2.0)

    def test_from_points_equal_times_raises(self):
        with pytest.raises(ValueError):
            Line.from_points(1.0, 0.0, 1.0, 5.0)

    def test_from_point_slope(self):
        line = Line.from_point_slope(2.0, 3.0, 0.5)
        assert line.value_at(2.0) == pytest.approx(3.0)
        assert line.value_at(4.0) == pytest.approx(4.0)

    def test_horizontal(self):
        line = Line.horizontal(7.0)
        assert line.slope == 0.0
        assert line.value_at(-100.0) == pytest.approx(7.0)
        assert line.value_at(100.0) == pytest.approx(7.0)


class TestEvaluation:
    def test_call_matches_value_at(self):
        line = Line(1.5, -2.0)
        assert line(4.0) == line.value_at(4.0)

    def test_shifted(self):
        line = Line(2.0, 1.0)
        shifted = line.shifted(3.0)
        assert shifted.slope == line.slope
        assert shifted.value_at(10.0) == pytest.approx(line.value_at(10.0) + 3.0)

    def test_vertical_distance_sign(self):
        line = Line(0.0, 5.0)
        assert line.vertical_distance(0.0, 7.0) == pytest.approx(2.0)
        assert line.vertical_distance(0.0, 3.0) == pytest.approx(-2.0)

    def test_above_below_point(self):
        line = Line(1.0, 0.0)
        assert line.is_above_point(2.0, 1.0)
        assert not line.is_above_point(2.0, 3.0)
        assert line.is_below_point(2.0, 3.0)
        assert not line.is_below_point(2.0, 1.0)

    def test_within_of_point(self):
        line = Line(0.0, 0.0)
        assert line.within_of_point(1.0, 0.5, epsilon=0.5)
        assert not line.within_of_point(1.0, 0.6, epsilon=0.5)
        assert line.within_of_point(1.0, 0.6, epsilon=0.5, slack=0.2)


class TestIntersection:
    def test_intersection_time(self):
        a = Line(1.0, 0.0)
        b = Line(-1.0, 4.0)
        assert a.intersection_time(b) == pytest.approx(2.0)

    def test_intersection_point(self):
        a = Line(1.0, 0.0)
        b = Line(-1.0, 4.0)
        t, x = a.intersection_point(b)
        assert t == pytest.approx(2.0)
        assert x == pytest.approx(2.0)

    def test_parallel_lines_no_intersection(self):
        a = Line(1.0, 0.0)
        b = Line(1.0, 5.0)
        assert a.intersection_time(b) is None
        assert a.intersection_point(b) is None

    def test_coincident_lines_no_unique_intersection(self):
        a = Line(2.0, 3.0)
        assert a.intersection_time(Line(2.0, 3.0)) is None

    def test_is_parallel_to(self):
        assert Line(1.0, 0.0).is_parallel_to(Line(1.0, 9.0))
        assert not Line(1.0, 0.0).is_parallel_to(Line(1.0001, 0.0))

    def test_intersection_is_symmetric(self):
        a = Line(0.3, 1.0)
        b = Line(-0.7, 2.0)
        assert a.intersection_time(b) == pytest.approx(b.intersection_time(a))


class TestImmutability:
    def test_frozen(self):
        line = Line(1.0, 2.0)
        with pytest.raises(Exception):
            line.slope = 3.0

    def test_equality(self):
        assert Line(1.0, 2.0) == Line(1.0, 2.0)
        assert Line(1.0, 2.0) != Line(1.0, 2.5)

    def test_nan_free_construction(self):
        line = Line.from_points(0.0, 0.0, 1e-6, 1.0)
        assert math.isfinite(line.slope)
        assert math.isfinite(line.intercept)
