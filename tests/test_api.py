"""Tests for the :mod:`repro.api` session façade (StreamDB + specs)."""

import asyncio
import warnings

import numpy as np
import pytest

import repro
from repro.api import FilterSpec, IngestSpec, StorageSpec, StreamDB
from repro.queries.stored import stored_range_aggregate, stored_threshold_crossings
from repro.runtime import CheckpointManager, StreamTask
from repro.storage import SegmentStore, ShardedStore, open_store


def make_signal(length=1500, seed=7):
    rng = np.random.default_rng(seed)
    times = np.arange(float(length))
    values = np.cumsum(rng.normal(0.0, 0.4, length)) + 3.0 * np.sin(times / 40.0)
    return times, values


def recordings_equal(left, right):
    if len(left) != len(right):
        return False
    return all(
        a.time == b.time and a.kind == b.kind and np.array_equal(a.value, b.value)
        for a, b in zip(left, right)
    )


SLIDE = {"filter": FilterSpec("slide", epsilon=0.5)}


class TestPublicExports:
    def test_every_exported_name_imports(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists {name!r} but it is missing"

    def test_surface_includes_api_runtime_and_storage(self):
        for name in (
            "StreamDB",
            "FilterSpec",
            "StorageSpec",
            "IngestSpec",
            "FilterState",
            "CheckpointManager",
            "open_store",
        ):
            assert name in repro.__all__
        # The session entry point is reachable as repro.open but kept out of
        # __all__ so a star import cannot shadow the builtin open().
        assert callable(repro.open)
        assert "open" not in repro.__all__

    def test_star_import_is_clean(self):
        namespace = {}
        exec("from repro import *", namespace)
        missing = [n for n in repro.__all__ if n not in namespace]
        assert missing == []
        assert "open" not in namespace  # builtin open() must survive


class TestFilterSpec:
    def test_requires_exactly_one_epsilon_form(self):
        with pytest.raises(ValueError, match="exactly one"):
            FilterSpec("slide")
        with pytest.raises(ValueError, match="exactly one"):
            FilterSpec("slide", epsilon=0.5, epsilon_percent=1.0)

    def test_unknown_filter_rejected(self):
        with pytest.raises(ValueError, match="unknown filter"):
            FilterSpec("nope", epsilon=0.5)

    def test_invalid_max_lag(self):
        with pytest.raises(ValueError, match="max_lag"):
            FilterSpec("slide", epsilon=0.5, max_lag=1)

    def test_percent_resolves_against_values(self):
        spec = FilterSpec("swing", epsilon_percent=10.0)
        values = np.array([0.0, 10.0])
        assert spec.resolve(values) == pytest.approx(1.0)

    def test_percent_without_values_raises(self):
        spec = FilterSpec("swing", epsilon_percent=10.0)
        with pytest.raises(ValueError, match="epsilon_percent"):
            spec.resolve(None)

    def test_create_builds_configured_filter(self):
        spec = FilterSpec("slide", epsilon=0.25, max_lag=50)
        built = spec.create()
        assert built.name == "slide"
        assert built.max_lag == 50


class TestIngestSpec:
    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"chunk_size": 0}, "chunk_size"),
            ({"workers": 0}, "workers"),
            ({"checkpoint_every": 0}, "checkpoint_every"),
            ({"resume": True}, "resume"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ValueError, match=match):
            IngestSpec(**kwargs)

    def test_merged_overrides_and_revalidates(self):
        spec = IngestSpec(chunk_size=128)
        assert spec.merged(chunk_size=None).chunk_size == 128
        assert spec.merged(chunk_size=64).chunk_size == 64
        with pytest.raises(ValueError):
            spec.merged(workers=0)
        with pytest.raises(TypeError, match="unknown ingest option"):
            spec.merged(chunk=1)

    def test_storage_spec_validation(self):
        with pytest.raises(ValueError, match="shards"):
            StorageSpec(shards=0)
        with pytest.raises(ValueError, match="block_records"):
            StorageSpec(block_records=0)


class TestOpen:
    def test_open_creates_plain_store(self, tmp_path):
        with repro.open(tmp_path / "db", **SLIDE) as db:
            assert isinstance(db, StreamDB)
            assert isinstance(db.store, SegmentStore)
            assert db.streams() == []

    def test_open_with_shards_creates_sharded_store(self, tmp_path):
        with repro.open(tmp_path / "db", shards=3, **SLIDE) as db:
            assert isinstance(db.store, ShardedStore)
            assert db.store.shard_count == 3

    def test_shards_and_storage_are_mutually_exclusive(self, tmp_path):
        with pytest.raises(ValueError, match="not both"):
            repro.open(tmp_path / "db", shards=2, storage=StorageSpec(shards=2))

    def test_create_false_requires_existing_store(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            repro.open(tmp_path / "missing", create=False)
        assert not (tmp_path / "missing").exists()

    def test_create_false_opens_existing_store(self, tmp_path):
        times, values = make_signal(300)
        with repro.open(tmp_path / "db", **SLIDE) as db:
            db.ingest("s", times, values)
        with repro.open(tmp_path / "db", create=False) as db:
            assert db.streams() == ["s"]


class TestBulkIngest:
    def test_plain_ingest_round_trip(self, tmp_path):
        times, values = make_signal()
        with repro.open(tmp_path / "db", **SLIDE) as db:
            report = db.ingest("s", times, values)
            assert report.points == len(times)
            assert report.recordings == db.describe("s").recordings
            approx = db.query("s")
            deviations = np.abs(approx.deviations(list(zip(times, values))))
            assert float(deviations.max()) <= 0.5 + 1e-9

    def test_ingest_records_epsilon_in_catalog(self, tmp_path):
        times, values = make_signal(400)
        with repro.open(tmp_path / "db", **SLIDE) as db:
            db.ingest("s", times, values)
            assert db.describe("s").epsilon == [0.5]

    def test_ingest_matches_store_query_helpers(self, tmp_path):
        times, values = make_signal()
        with repro.open(tmp_path / "db", **SLIDE) as db:
            db.ingest("s", times, values)
            expected = stored_range_aggregate(db.store, "s", 100.0, 1000.0)
            actual = db.aggregate("s", 100.0, 1000.0)
            assert actual == expected
            threshold = float(np.median(values))
            assert db.crossings("s", threshold) == stored_threshold_crossings(
                db.store, "s", threshold
            )

    def test_ingest_chunk_source(self, tmp_path):
        times, values = make_signal()
        chunks = [(times[i : i + 200], values[i : i + 200]) for i in range(0, len(times), 200)]
        with repro.open(tmp_path / "a", **SLIDE) as db:
            db.ingest("s", source=iter(chunks))
            from_source = db.store.read("s")
        with repro.open(tmp_path / "b", **SLIDE) as db:
            db.ingest("s", times, values, chunk_size=200)
            from_arrays = db.store.read("s")
        assert recordings_equal(from_source, from_arrays)

    def test_ingest_async_source(self, tmp_path):
        times, values = make_signal(800)

        async def chunk_source():
            for start in range(0, len(times), 100):
                await asyncio.sleep(0)
                yield times[start : start + 100], values[start : start + 100]

        with repro.open(tmp_path / "a", **SLIDE) as db:
            report = db.ingest("s", source=chunk_source())
            assert report.points == len(times)
        with repro.open(tmp_path / "b", **SLIDE) as db:
            db.ingest("s", times, values, chunk_size=100)
            reference = db.store.read("s")
        assert recordings_equal(open_store(tmp_path / "a").read("s"), reference)

    def test_checkpointed_ingest_and_resume(self, tmp_path):
        times, values = make_signal()
        with repro.open(tmp_path / "db", **SLIDE) as db:
            db.ingest("s", times, values, checkpoint=tmp_path / "ckpt", chunk_size=128)
            before = db.describe("s").recordings
            checkpoint = CheckpointManager(tmp_path / "ckpt").load("s")
            assert checkpoint is not None and checkpoint.complete
            # Resuming a completed run is a no-op.
            report = db.ingest(
                "s", times, values, checkpoint=tmp_path / "ckpt", resume=True, chunk_size=128
            )
            assert report.points == 0
            assert db.describe("s").recordings == before

    def test_split_dimensions_layout(self, tmp_path):
        times, values = make_signal(600)
        multi = np.stack([values, values * 0.5, -values], axis=1)
        with repro.open(tmp_path / "db", shards=2, **SLIDE) as db:
            report = db.ingest("m", times, multi, split_dimensions=True)
            assert report.streams == 3
            assert db.streams() == ["m/d0", "m/d1", "m/d2"]

    def test_split_requires_sharded_store(self, tmp_path):
        times, values = make_signal(100)
        with repro.open(tmp_path / "db", **SLIDE) as db:
            with pytest.raises(ValueError, match="sharded store"):
                db.ingest("m", times, values, split_dimensions=True)

    def test_workers_require_split_dimensions(self, tmp_path):
        times, values = make_signal(100)
        with repro.open(tmp_path / "db", shards=2, **SLIDE) as db:
            with pytest.raises(ValueError, match="split_dimensions"):
                db.ingest("s", times, values, workers=2)

    def test_ingest_many_matches_single_stream_ingests(self, tmp_path):
        times, values = make_signal(600)
        tasks = [
            StreamTask(name="a", times=times, values=values),
            StreamTask(name="b", times=times, values=values * 2.0),
        ]
        with repro.open(tmp_path / "many", shards=2, **SLIDE) as db:
            report = db.ingest_many(tasks)
            assert report.streams == 2
            assert set(db.streams()) == {"a", "b"}
            many_a = db.store.read("a")
        with repro.open(tmp_path / "single", shards=2, **SLIDE) as db:
            db.ingest("a", times, values, chunk_size=IngestSpec().chunk_size)
            assert recordings_equal(db.store.read("a"), many_a)

    def test_ingest_without_filter_spec_raises(self, tmp_path):
        times, values = make_signal(100)
        with repro.open(tmp_path / "db") as db:
            with pytest.raises(ValueError, match="no filter configured"):
                db.ingest("s", times, values)
            # A per-call spec fills the gap.
            db.ingest("s", times, values, filter=FilterSpec("swing", epsilon=0.5))
            assert "s" in db

    def test_conflicting_workload_arguments(self, tmp_path):
        times, values = make_signal(50)
        with repro.open(tmp_path / "db", **SLIDE) as db:
            with pytest.raises(ValueError, match="not both"):
                db.ingest("s", times, values, source=iter([]))
            with pytest.raises(ValueError, match="together"):
                db.ingest("s", times)


class TestLiveStreams:
    @pytest.mark.parametrize("name", ["swing", "slide", "cache", "linear"])
    def test_query_merges_live_state_bit_identically(self, tmp_path, name):
        """The acceptance criterion: a query over a half-ingested stream is
        bit-identical to sealing (flush) and reading the store."""
        times, values = make_signal()
        half = len(times) // 2
        spec = FilterSpec(name, epsilon=0.5)
        with repro.open(tmp_path / "live", filter=spec, archive_batch=16) as db:
            db.append("s", times[:half], values[:half])
            merged_all = db.read("s")
            merged_range = db.read("s", 100.0, 500.0)
            live_agg = db.aggregate("s", 100.0, 500.0)
        with repro.open(tmp_path / "flushed", filter=spec, archive_batch=16) as db:
            db.append("s", times[:half], values[:half])
            db.seal("s")
            flushed_all = db.store.read("s")
            flushed_range = db.store.read("s", 100.0, 500.0)
            flushed_agg = stored_range_aggregate(db.store, "s", 100.0, 500.0)
        assert recordings_equal(merged_all, flushed_all)
        assert recordings_equal(merged_range, flushed_range)
        assert live_agg == flushed_agg

    def test_query_does_not_disturb_the_live_filter(self, tmp_path):
        times, values = make_signal()
        half = len(times) // 2
        with repro.open(tmp_path / "a", **SLIDE) as db:
            db.append("s", times[:half], values[:half])
            for _ in range(3):
                db.read("s")  # snapshot-reads must not perturb the run
            db.append("s", times[half:], values[half:])
            db.seal("s")
            queried = db.store.read("s")
        with repro.open(tmp_path / "b", **SLIDE) as db:
            db.append("s", times, values)
            db.seal("s")
            reference = db.store.read("s")
        assert recordings_equal(queried, reference)

    def test_append_archives_in_batches(self, tmp_path):
        times, values = make_signal()
        with repro.open(tmp_path / "db", archive_batch=8, **SLIDE) as db:
            db.append("s", times, values)
            archived = db.describe("s").recordings
            assert archived > 0  # batches crossed the threshold
            merged = len(db.read("s"))
            assert merged >= archived
            db.flush()
            # flush archives the buffer but keeps the in-flight segment open.
            assert "s" in db.live_streams()

    def test_flush_is_idempotent(self, tmp_path):
        times, values = make_signal(500)
        with repro.open(tmp_path / "db", archive_batch=4, **SLIDE) as db:
            db.append("s", times, values)
            db.flush()
            first = db.describe("s").recordings
            db.flush()
            assert db.describe("s").recordings == first

    def test_observe_single_points(self, tmp_path):
        with repro.open(tmp_path / "db", **SLIDE) as db:
            for t in range(50):
                db.observe("s", float(t), np.sin(t / 3.0))
            assert db.read("s")  # live merge sees the in-flight segment
            db.seal("s")
            assert db.describe("s").recordings > 0

    def test_seal_unknown_stream_raises(self, tmp_path):
        with repro.open(tmp_path / "db", **SLIDE) as db:
            with pytest.raises(KeyError, match="no live writer"):
                db.seal("ghost")

    def test_bulk_ingest_refuses_live_stream(self, tmp_path):
        times, values = make_signal(100)
        with repro.open(tmp_path / "db", **SLIDE) as db:
            db.append("s", times[:50], values[:50])
            with pytest.raises(ValueError, match="live writer"):
                db.ingest("s", times[50:], values[50:])

    def test_read_unknown_stream_raises(self, tmp_path):
        with repro.open(tmp_path / "db", **SLIDE) as db:
            with pytest.raises(KeyError, match="unknown stream"):
                db.read("ghost")

    def test_query_empty_stream_raises(self, tmp_path):
        with repro.open(tmp_path / "db", **SLIDE) as db:
            db.append("s", [0.0], [1.0])  # single point: nothing emitted yet?
            # Either way the query must not crash with an opaque error.
            recordings = db.read("s")
            if recordings:
                db.query("s")


class TestSnapshotRestore:
    def test_detach_restore_hands_off_bit_identically(self, tmp_path):
        """Worker migration: detach a live stream, restore it in a second
        session, continue — the store ends bit-identical to one session."""
        times, values = make_signal()
        half = len(times) // 2
        with repro.open(tmp_path / "one", archive_batch=32, **SLIDE) as db:
            db.append("s", times, values)
            db.seal("s")
            reference = db.store.read("s")
        first = repro.open(tmp_path / "two", archive_batch=32, **SLIDE)
        first.append("s", times[:half], values[:half])
        state = first.detach("s")
        assert first.live_streams() == []
        first.close()  # must not seal the detached stream
        with repro.open(tmp_path / "two", archive_batch=32, **SLIDE) as db:
            db.restore({"s": state})
            assert db.live_streams() == ["s"]
            db.append("s", times[half:], values[half:])
            db.seal("s")
            assert recordings_equal(db.store.read("s"), reference)

    def test_snapshot_returns_state_per_live_stream(self, tmp_path):
        times, values = make_signal(300)
        with repro.open(tmp_path / "db", **SLIDE) as db:
            db.append("a", times, values)
            db.append("b", times, values * 2.0)
            states = db.snapshot()
            assert set(states) == {"a", "b"}
            # Snapshot flushed the buffers: the store holds the emitted part.
            merged = db.read("a")
            stored = db.store.read("a") if "a" in db.store else []
            assert len(merged) >= len(stored)

    def test_directory_snapshot_restore_resumes_exactly(self, tmp_path):
        times, values = make_signal()
        half = len(times) // 2
        ckpt = tmp_path / "ckpt"
        with repro.open(tmp_path / "a", archive_batch=16, **SLIDE) as db:
            db.append("s", times[:half], values[:half])
            db.snapshot(ckpt)
            # Recordings emitted *after* the snapshot land in the store...
            db.append("s", times[half : half + 200], values[half : half + 200])
            db.flush()
        # ...and a directory restore rolls them back before resuming.
        with repro.open(tmp_path / "a", **SLIDE) as db:
            restored = db.restore(ckpt)
            assert restored == ["s"]
            db.append("s", times[half:], values[half:])
            db.seal("s")
            resumed = db.store.read("s")
        with repro.open(tmp_path / "b", **SLIDE) as db:
            db.append("s", times, values)
            db.seal("s")
            reference = db.store.read("s")
        assert recordings_equal(resumed, reference)

    def test_restore_conflicts_with_live_writer(self, tmp_path):
        times, values = make_signal(100)
        with repro.open(tmp_path / "db", **SLIDE) as db:
            db.append("s", times, values)
            states = db.snapshot()
            with pytest.raises(ValueError, match="live writer"):
                db.restore(states)

    def test_restore_missing_checkpoint_raises(self, tmp_path):
        with repro.open(tmp_path / "db", **SLIDE) as db:
            with pytest.raises(KeyError, match="no checkpoint"):
                db.restore(tmp_path / "empty-ckpt", streams=["ghost"])


class TestLifecycle:
    def test_close_seals_live_streams(self, tmp_path):
        times, values = make_signal(400)
        db = repro.open(tmp_path / "db", **SLIDE)
        db.append("s", times, values)
        db.close()
        assert db.closed
        db.close()  # idempotent
        reopened = open_store(tmp_path / "db")
        assert reopened.describe("s").recordings > 0

    def test_operations_after_close_raise(self, tmp_path):
        db = repro.open(tmp_path / "db", **SLIDE)
        db.close()
        with pytest.raises(RuntimeError, match="closed"):
            db.streams()
        with pytest.raises(RuntimeError, match="closed"):
            db.append("s", [0.0], [0.0])

    def test_context_manager(self, tmp_path):
        times, values = make_signal(300)
        with repro.open(tmp_path / "db", **SLIDE) as db:
            db.append("s", times, values)
        assert db.closed
        assert open_store(tmp_path / "db").describe("s").recordings > 0

    def test_len_and_contains(self, tmp_path):
        times, values = make_signal(200)
        with repro.open(tmp_path / "db", **SLIDE) as db:
            db.ingest("stored", times, values)
            db.append("live", times, values)
            assert "stored" in db and "live" in db and "ghost" not in db
            assert len(db) == 2
            assert db.streams() == ["live", "stored"]
            assert db.live_streams() == ["live"]

    def test_compact_through_session(self, tmp_path):
        times, values = make_signal(400)
        with repro.open(
            tmp_path / "db", storage=StorageSpec(block_records=4), **SLIDE
        ) as db:
            db.ingest("s", times, values)
            recordings = db.describe("s").recordings
            assert recordings > 4  # enough to spread over several tiny blocks
        # Reopened with the default block size, the 4-record blocks are
        # undersized and compaction merges them.
        with repro.open(tmp_path / "db", **SLIDE) as db:
            rebuilt = db.compact()
            assert "s" in rebuilt
            before, after = rebuilt["s"]
            assert after < before
            assert db.describe("s").recordings == recordings
            assert len(db.store.read("s")) == recordings

    def test_invalid_archive_batch(self, tmp_path):
        with pytest.raises(ValueError, match="archive_batch"):
            repro.open(tmp_path / "db", archive_batch=0)


class TestDeprecationShims:
    def test_monitoring_pipeline_run_arrays_warns_once(self):
        from repro.streams.pipeline import MonitoringPipeline

        times, values = make_signal(200)
        pipeline = MonitoringPipeline("swing", epsilon=0.5)
        with pytest.warns(DeprecationWarning, match="StreamDB") as captured:
            pipeline.run_arrays(times, values)
        assert len(captured) == 1

    def test_stream_set_run_arrays_warns_once(self):
        from repro.streams.multiplex import StreamSet

        times, values = make_signal(200)
        streams = StreamSet("swing", epsilon=0.5)
        with pytest.warns(DeprecationWarning, match="StreamDB") as captured:
            streams.run_arrays({"a": (times, values)})
        assert len(captured) == 1

    def test_deprecated_paths_still_work(self):
        from repro.streams.pipeline import MonitoringPipeline

        times, values = make_signal(200)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            report = MonitoringPipeline("swing", epsilon=0.5).run_arrays(times, values)
        assert report.points == len(times)


class TestReviewRegressions:
    def test_ingest_many_rebinds_live_sinks(self, tmp_path):
        """A live stream must survive a parallel fan-out: the fan-out closes
        and reopens the session store, and the live sink must follow —
        a sink left on the stale handle would archive invisibly and its
        flush would clobber the workers' catalog writes."""
        times, values = make_signal(600)
        half = len(times) // 2
        with repro.open(tmp_path / "db", shards=2, archive_batch=8, **SLIDE) as db:
            db.append("live", times[:half], values[:half])
            db.ingest_many([StreamTask(name="bulk", times=times, values=values)])
            assert "bulk" in db.store  # the workers' writes are visible
            db.append("live", times[half:], values[half:])
            db.seal("live")
            live_count = db.describe("live").recordings
            bulk_count = db.describe("bulk").recordings
        reopened = open_store(tmp_path / "db")
        assert reopened.describe("bulk").recordings == bulk_count
        assert reopened.describe("live").recordings == live_count

    def test_ingest_many_rejects_conflicting_live_writer(self, tmp_path):
        times, values = make_signal(100)
        with repro.open(tmp_path / "db", shards=2, **SLIDE) as db:
            db.append("s", times, values)
            with pytest.raises(ValueError, match="live writer"):
                db.ingest_many([StreamTask(name="s", times=times, values=values)])

    def test_filter_spec_rejects_bad_epsilon_at_construction(self):
        from repro.core.errors import ReproError

        with pytest.raises((ValueError, ReproError)):
            FilterSpec("slide", epsilon=-1.0)
        with pytest.raises((ValueError, ReproError)):
            FilterSpec("slide", epsilon=float("nan"))
        with pytest.raises(ValueError, match="not numeric"):
            FilterSpec("slide", epsilon="half a degree")

    def test_bad_epsilon_creates_no_store_directory(self, tmp_path):
        from repro.core.errors import ReproError

        with pytest.raises((ValueError, ReproError)):
            repro.open(tmp_path / "db", filter=FilterSpec("slide", epsilon=-1.0))
        assert not (tmp_path / "db").exists()

    def test_ingest_many_honours_block_records(self, tmp_path):
        times, values = make_signal(600)
        spec = StorageSpec(shards=2, block_records=4)
        with repro.open(tmp_path / "db", storage=spec, **SLIDE) as db:
            db.ingest_many([StreamTask(name="s", times=times, values=values)])
            entry = db.describe("s")
            assert entry.recordings > 4
            assert max(block[1] for block in entry.blocks) <= 4

    def test_chunk_source_honours_checkpoint(self, tmp_path):
        times, values = make_signal(600)
        chunks = [(times[i : i + 100], values[i : i + 100]) for i in range(0, 600, 100)]
        ckpt = tmp_path / "ckpt"
        with repro.open(tmp_path / "db", **SLIDE) as db:
            db.ingest("s", source=iter(chunks), checkpoint=ckpt, chunk_size=100)
            checkpoint = CheckpointManager(ckpt).load("s")
            assert checkpoint is not None and checkpoint.complete
            # Resuming the completed run is a no-op, not a duplicate ingest.
            report = db.ingest(
                "s", source=iter(chunks), checkpoint=ckpt, resume=True, chunk_size=100
            )
            assert report.points == 0

    def test_async_source_with_checkpoint_rejected(self, tmp_path):
        async def chunk_source():
            yield np.array([0.0]), np.array([0.0])

        with repro.open(tmp_path / "db", **SLIDE) as db:
            with pytest.raises(ValueError, match="async"):
                db.ingest("s", source=chunk_source(), checkpoint=tmp_path / "ckpt")

    def test_failed_restore_does_not_truncate_store(self, tmp_path):
        """A restore that conflicts with a live writer must fail BEFORE any
        stream is rolled back — otherwise post-checkpoint recordings are
        destroyed by a no-op call."""
        times, values = make_signal(600)
        ckpt = tmp_path / "ckpt"
        with repro.open(tmp_path / "db", archive_batch=8, **SLIDE) as db:
            db.append("s", times[:300], values[:300])
            db.snapshot(ckpt)
            db.append("s", times[300:], values[300:])
            db.flush()
            stored_before = db.describe("s").recordings
            with pytest.raises(ValueError, match="live writer"):
                db.restore(ckpt)  # "s" is still live
            assert db.describe("s").recordings == stored_before

    def test_checkpoint_none_disables_session_default(self, tmp_path):
        times, values = make_signal(300)
        ckpt = tmp_path / "ckpt"
        session_spec = IngestSpec(checkpoint=ckpt)
        with repro.open(tmp_path / "db", ingest=session_spec, **SLIDE) as db:
            db.ingest("plain", times, values, checkpoint=None)
            assert CheckpointManager(ckpt).load("plain") is None
            db.ingest("checked", times, values)  # session default applies
            assert CheckpointManager(ckpt).load("checked") is not None

    def test_session_checkpoint_default_allows_async_opt_out(self, tmp_path):
        async def chunk_source():
            yield np.arange(5.0), np.zeros(5)

        session_spec = IngestSpec(checkpoint=tmp_path / "ckpt")
        with repro.open(tmp_path / "db", ingest=session_spec, **SLIDE) as db:
            with pytest.raises(ValueError, match="async"):
                db.ingest("s", source=chunk_source())
            report = db.ingest("s", source=chunk_source(), checkpoint=None)
            assert report.points == 5
