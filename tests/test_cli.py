"""Tests for the command-line interface."""

import csv

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.random_walk import RandomWalkConfig, random_walk


def write_csv(path, times, values):
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["t", "x"])
        for t, x in zip(times, values):
            writer.writerow([t, x])


@pytest.fixture
def csv_workload(tmp_path):
    times, values = random_walk(RandomWalkConfig(length=300, max_delta=0.5, seed=33))
    path = tmp_path / "signal.csv"
    write_csv(path, times, values)
    return path, times, values


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compress_requires_precision(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compress", "--dataset", "sst"])

    def test_workload_is_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compress", "--dataset", "sst", "--input", "x.csv", "--epsilon", "1"]
            )


class TestCommands:
    def test_filters_command(self, capsys):
        assert main(["filters"]) == 0
        output = capsys.readouterr().out
        for name in ("cache", "linear", "swing", "slide"):
            assert name in output

    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        assert "sst" in capsys.readouterr().out

    def test_compress_dataset(self, capsys, tmp_path):
        output_path = tmp_path / "recordings.csv"
        code = main(
            [
                "compress",
                "--dataset",
                "sst",
                "--filter",
                "swing",
                "--precision-percent",
                "1",
                "-o",
                str(output_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "compression ratio" in output
        rows = list(csv.reader(open(output_path)))
        assert rows[0] == ["kind", "time", "x1"]
        assert len(rows) > 2

    def test_compress_csv_input(self, capsys, csv_workload):
        path, _, _ = csv_workload
        code = main(["compress", "--input", str(path), "--filter", "slide", "--epsilon", "0.5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "recordings" in output

    def test_compress_with_max_lag(self, capsys, csv_workload):
        path, _, _ = csv_workload
        code = main(
            [
                "compress",
                "--input",
                str(path),
                "--filter",
                "swing",
                "--epsilon",
                "0.5",
                "--max-lag",
                "20",
            ]
        )
        assert code == 0

    def test_evaluate_command(self, capsys, csv_workload):
        path, _, _ = csv_workload
        code = main(["evaluate", "--input", str(path), "--epsilon", "0.5"])
        assert code == 0
        output = capsys.readouterr().out
        for name in ("cache", "linear", "swing", "slide"):
            assert name in output

    def test_evaluate_filter_subset(self, capsys, csv_workload):
        path, _, _ = csv_workload
        code = main(
            ["evaluate", "--input", str(path), "--epsilon", "0.5", "--filters", "swing", "slide"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "swing" in output
        assert "cache" not in output.replace("cache-", "")

    def test_empty_csv_rejected(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("t,x\n")
        with pytest.raises(SystemExit):
            main(["compress", "--input", str(path), "--epsilon", "0.5"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0


class TestIngestSharded:
    def test_ingest_into_sharded_store(self, capsys, csv_workload, tmp_path):
        from repro.storage import ShardedStore, open_store

        path, times, values = csv_workload
        store_dir = tmp_path / "archive"
        code = main(
            ["ingest", "--input", str(path), "--filter", "swing", "--epsilon",
             "0.5", "--store", str(store_dir), "--shards", "4", "--name", "sensor/1"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "4 shards" in output
        store = open_store(store_dir)
        assert isinstance(store, ShardedStore)
        assert store.shard_count == 4
        approx = store.reconstruct("sensor/1")
        deviations = np.abs(approx.deviations(list(zip(times, values))))
        assert float(deviations.max()) <= 0.5 + 1e-8

    def test_ingest_reopens_existing_sharded_store(self, csv_workload, tmp_path):
        from repro.storage import open_store

        path, _, _ = csv_workload
        store_dir = tmp_path / "archive"
        assert main(
            ["ingest", "--input", str(path), "--filter", "swing", "--epsilon",
             "0.5", "--store", str(store_dir), "--shards", "2", "--name", "a"]
        ) == 0
        # Same shard count: fine; ingest a second stream.
        assert main(
            ["ingest", "--input", str(path), "--filter", "swing", "--epsilon",
             "0.5", "--store", str(store_dir), "--shards", "2", "--name", "b"]
        ) == 0
        assert open_store(store_dir).stream_names() == ["a", "b"]

    def test_ingest_shard_count_mismatch_fails_cleanly(self, csv_workload, tmp_path):
        path, _, _ = csv_workload
        store_dir = tmp_path / "archive"
        assert main(
            ["ingest", "--input", str(path), "--filter", "swing", "--epsilon",
             "0.5", "--store", str(store_dir), "--shards", "2"]
        ) == 0
        with pytest.raises(SystemExit, match="ingest failed"):
            main(
                ["ingest", "--input", str(path), "--filter", "swing", "--epsilon",
                 "0.5", "--store", str(store_dir), "--shards", "3"]
            )

    def test_ingest_invalid_shard_count_leaves_no_store(self, csv_workload, tmp_path):
        path, _, _ = csv_workload
        store_dir = tmp_path / "archive"
        with pytest.raises(SystemExit, match="shards"):
            main(
                ["ingest", "--input", str(path), "--filter", "swing", "--epsilon",
                 "0.5", "--store", str(store_dir), "--shards", "0"]
            )
        assert not store_dir.exists()


class TestIngestRuntime:
    def test_checkpointed_ingest_and_resume(self, capsys, csv_workload, tmp_path):
        from repro.runtime import CheckpointManager
        from repro.storage import open_store

        path, times, values = csv_workload
        store_dir, ckpt_dir = tmp_path / "archive", tmp_path / "ckpt"
        base = ["ingest", "--input", str(path), "--filter", "swing", "--epsilon",
                "0.5", "--store", str(store_dir), "--name", "s",
                "--chunk-size", "64", "--checkpoint", str(ckpt_dir)]
        assert main(base) == 0
        checkpoint = CheckpointManager(ckpt_dir).load("s")
        assert checkpoint is not None and checkpoint.complete
        before = open_store(store_dir).describe("s").recordings
        # Resuming a completed run must not duplicate anything.
        assert main(base + ["--resume"]) == 0
        output = capsys.readouterr().out
        assert "data points       : 0" in output
        assert open_store(store_dir).describe("s").recordings == before

    def test_resume_requires_checkpoint(self, csv_workload, tmp_path):
        path, _, _ = csv_workload
        with pytest.raises(SystemExit, match="resume requires"):
            main(["ingest", "--input", str(path), "--filter", "swing",
                  "--epsilon", "0.5", "--store", str(tmp_path / "a"), "--resume"])

    def test_split_dimensions_with_workers(self, capsys, tmp_path):
        from repro.storage import ShardedStore, open_store

        store_dir = tmp_path / "archive"
        code = main(["ingest", "--dataset", "correlated-5d", "--filter", "swing",
                     "--epsilon", "0.5", "--store", str(store_dir),
                     "--split-dimensions", "--workers", "2", "--shards", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "workers           : 2" in output
        store = open_store(store_dir)
        assert isinstance(store, ShardedStore)
        assert store.shard_count == 2
        assert store.stream_names() == [f"correlated-5d/d{i}" for i in range(5)]

    def test_split_dimensions_layout_is_worker_independent(self, tmp_path):
        from repro.storage import open_store

        for workers, label in (("1", "a"), ("2", "b")):
            assert main(["ingest", "--dataset", "correlated-5d", "--filter", "swing",
                         "--epsilon", "0.5", "--store", str(tmp_path / label),
                         "--split-dimensions", "--workers", workers]) == 0
        serial, parallel = open_store(tmp_path / "a"), open_store(tmp_path / "b")
        assert serial.stream_names() == parallel.stream_names()
        assert serial.shard_count == parallel.shard_count
        for name in serial.stream_names():
            assert serial.describe(name).recordings == parallel.describe(name).recordings

    def test_workers_require_split_dimensions(self, csv_workload, tmp_path):
        path, _, _ = csv_workload
        with pytest.raises(SystemExit, match="split-dimensions"):
            main(["ingest", "--input", str(path), "--filter", "swing",
                  "--epsilon", "0.5", "--store", str(tmp_path / "a"),
                  "--workers", "4"])
        assert not (tmp_path / "a").exists()

    def test_invalid_worker_count(self, csv_workload, tmp_path):
        path, _, _ = csv_workload
        with pytest.raises(SystemExit, match="workers"):
            main(["ingest", "--input", str(path), "--filter", "swing",
                  "--epsilon", "0.5", "--store", str(tmp_path / "a"),
                  "--workers", "0"])


class TestCompactCommand:
    def test_compact_store(self, capsys, csv_workload, tmp_path):
        from repro.storage import SegmentStore

        path, _, _ = csv_workload
        store_dir = tmp_path / "archive"
        small = SegmentStore(store_dir, block_records=4)
        times = np.arange(100, dtype=float)
        small.append_arrays("s", times, np.zeros(100))
        small.close()
        assert main(["compact", "--store", str(store_dir)]) == 0
        output = capsys.readouterr().out
        assert "compacted 1 stream(s)" in output
        assert "blocks before" in output

    def test_compact_unknown_stream_fails_cleanly(self, tmp_path):
        from repro.storage import SegmentStore

        store = SegmentStore(tmp_path / "a")
        store.append_arrays("s", [0.0], [0.0])
        store.close()
        with pytest.raises(SystemExit, match="compact failed"):
            main(["compact", "--store", str(tmp_path / "a"), "--stream", "ghost"])

    def test_compact_noop_store(self, capsys, tmp_path):
        from repro.storage import SegmentStore

        store = SegmentStore(tmp_path / "a")
        store.append_arrays("s", [0.0], [0.0])
        store.close()
        assert main(["compact", "--store", str(tmp_path / "a")]) == 0
        assert "compacted 0 stream(s)" in capsys.readouterr().out

    def test_compact_refuses_to_create_a_store(self, tmp_path):
        missing = tmp_path / "no-such-store"
        with pytest.raises(SystemExit, match="no segment store"):
            main(["compact", "--store", str(missing)])
        assert not missing.exists()


class TestQueryCommand:
    def ingest(self, csv_workload, tmp_path, *extra):
        path, times, values = csv_workload
        store_dir = tmp_path / "archive"
        code = main(
            ["ingest", "--input", str(path), "--filter", "slide", "--epsilon",
             "0.5", "--store", str(store_dir), "--name", "s", *extra]
        )
        assert code == 0
        return store_dir, times, values

    def test_round_trip_matches_session_query(self, capsys, csv_workload, tmp_path):
        """End-to-end through the façade: `repro ingest --shards 2 --workers 1`
        then `repro query`, asserting the printed values match `db.query`."""
        import repro

        store_dir, times, values = self.ingest(
            csv_workload, tmp_path, "--shards", "2", "--workers", "1"
        )
        capsys.readouterr()
        start, end = float(times[50]), float(times[-50])
        assert main(
            ["query", "--store", str(store_dir), "--stream", "s",
             "--start", str(start), "--end", str(end)]
        ) == 0
        output = capsys.readouterr().out
        printed = {}
        for line in output.splitlines():
            key, _, value = line.partition(":")
            printed[key.strip()] = value.strip()
        with repro.open(store_dir, create=False) as db:
            aggregate = db.aggregate("s", start, end)
            approx = db.query("s", start, end)
        assert float(printed["minimum"]) == pytest.approx(aggregate.minimum, rel=1e-10)
        assert float(printed["maximum"]) == pytest.approx(aggregate.maximum, rel=1e-10)
        assert float(printed["mean"]) == pytest.approx(aggregate.mean, rel=1e-10)
        assert int(printed["recordings"]) == db.store.describe("s").recordings
        # The stored approximation reproduces the raw signal within epsilon.
        inside = (times >= start) & (times <= end)
        deviations = np.abs(
            approx.values_at(times[inside])[:, 0] - np.asarray(values)[inside]
        )
        assert float(deviations.max()) <= 0.5 + 1e-8

    def test_query_threshold_crossings(self, capsys, csv_workload, tmp_path):
        import repro

        store_dir, times, values = self.ingest(csv_workload, tmp_path)
        capsys.readouterr()
        threshold = float(np.median(values))
        assert main(
            ["query", "--store", str(store_dir), "--stream", "s",
             "--threshold", str(threshold)]
        ) == 0
        output = capsys.readouterr().out
        with repro.open(store_dir, create=False) as db:
            crossings = db.crossings("s", threshold)
        assert f"crossings         : {len(crossings)}" in output

    def test_query_resample_to_csv(self, capsys, csv_workload, tmp_path):
        store_dir, times, _ = self.ingest(csv_workload, tmp_path)
        out = tmp_path / "samples.csv"
        assert main(
            ["query", "--store", str(store_dir), "--stream", "s",
             "--step", "10", "-o", str(out)]
        ) == 0
        rows = list(csv.reader(open(out)))
        assert rows[0] == ["time", "x1"]
        assert len(rows) > 2

    def test_query_window_table(self, capsys, csv_workload, tmp_path):
        store_dir, times, _ = self.ingest(csv_workload, tmp_path)
        capsys.readouterr()
        assert main(
            ["query", "--store", str(store_dir), "--stream", "s", "--window", "50"]
        ) == 0
        output = capsys.readouterr().out
        assert "mean" in output and "start" in output

    def test_query_unknown_stream_fails_cleanly(self, csv_workload, tmp_path):
        store_dir, _, _ = self.ingest(csv_workload, tmp_path)
        with pytest.raises(SystemExit, match="query failed"):
            main(["query", "--store", str(store_dir), "--stream", "ghost"])

    def test_query_missing_store_fails_cleanly(self, tmp_path):
        missing = tmp_path / "nope"
        with pytest.raises(SystemExit, match="no segment store"):
            main(["query", "--store", str(missing), "--stream", "s"])
        assert not missing.exists()

    def test_query_output_requires_step(self, csv_workload, tmp_path):
        store_dir, _, _ = self.ingest(csv_workload, tmp_path)
        with pytest.raises(SystemExit, match="--output requires --step"):
            main(["query", "--store", str(store_dir), "--stream", "s",
                  "-o", str(tmp_path / "out.csv")])

    def test_query_window_conflicts_with_threshold(self, csv_workload, tmp_path):
        store_dir, _, _ = self.ingest(csv_workload, tmp_path)
        with pytest.raises(SystemExit):
            main(["query", "--store", str(store_dir), "--stream", "s",
                  "--window", "50", "--threshold", "0"])
