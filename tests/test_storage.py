"""Tests for the file-backed segment store."""

import numpy as np
import pytest

from repro.core.slide import SlideFilter
from repro.core.swing import SwingFilter
from repro.core.types import Recording, RecordingKind
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.storage.segment_store import SegmentStore


@pytest.fixture
def store(tmp_path):
    return SegmentStore(tmp_path / "segments")


def compress_walk(epsilon=0.5, length=600, seed=21):
    times, values = random_walk(RandomWalkConfig(length=length, max_delta=1.0, seed=seed))
    result = SlideFilter(epsilon).process(zip(times, values))
    return times, values, result


class TestCatalog:
    def test_empty_store(self, store):
        assert len(store) == 0
        assert store.stream_names() == []
        assert "anything" not in store

    def test_append_creates_stream(self, store):
        _, _, result = compress_walk()
        entry = store.append("walk", result.recordings, epsilon=0.5)
        assert "walk" in store
        assert entry.recordings == result.recording_count
        assert entry.dimensions == 1
        assert entry.epsilon == [0.5]
        assert entry.first_time == result.recordings[0].time
        assert entry.last_time == result.recordings[-1].time

    def test_describe_unknown_stream(self, store):
        with pytest.raises(KeyError):
            store.describe("missing")

    def test_multiple_streams_sorted(self, store):
        _, _, result = compress_walk()
        store.append("b-stream", result.recordings)
        store.append("a-stream", result.recordings)
        assert store.stream_names() == ["a-stream", "b-stream"]
        assert len(store) == 2

    def test_delete(self, store):
        _, _, result = compress_walk()
        store.append("walk", result.recordings)
        store.delete("walk")
        assert "walk" not in store
        with pytest.raises(KeyError):
            store.delete("walk")

    def test_total_bytes(self, store):
        _, _, result = compress_walk()
        store.append("walk", result.recordings)
        assert store.total_bytes() > 0


class TestPersistence:
    def test_reopen_preserves_catalog_and_data(self, tmp_path):
        directory = tmp_path / "segments"
        _, _, result = compress_walk()
        store = SegmentStore(directory)
        store.append("walk", result.recordings, epsilon=0.5)

        reopened = SegmentStore(directory)
        assert reopened.stream_names() == ["walk"]
        entry = reopened.describe("walk")
        assert entry.recordings == result.recording_count
        recordings = reopened.read("walk")
        assert len(recordings) == result.recording_count
        np.testing.assert_allclose(recordings[0].value, result.recordings[0].value)

    def test_incremental_appends(self, store):
        _, _, result = compress_walk()
        midpoint = result.recording_count // 2
        store.append("walk", result.recordings[:midpoint])
        store.append("walk", result.recordings[midpoint:])
        assert store.describe("walk").recordings == result.recording_count
        assert len(store.read("walk")) == result.recording_count

    def test_out_of_order_append_rejected(self, store):
        first = Recording(10.0, 1.0, RecordingKind.HOLD)
        second = Recording(5.0, 2.0, RecordingKind.HOLD)
        store.append("walk", [first])
        with pytest.raises(ValueError):
            store.append("walk", [second])

    def test_dimension_mismatch_rejected(self, store):
        store.append("walk", [Recording(0.0, 1.0, RecordingKind.HOLD)])
        with pytest.raises(ValueError):
            store.append("walk", [Recording(1.0, [1.0, 2.0], RecordingKind.HOLD)])

    def test_empty_append_is_noop(self, store):
        store.append("walk", [Recording(0.0, 1.0, RecordingKind.HOLD)])
        entry = store.append("walk", [])
        assert entry.recordings == 1


class TestReadAndReconstruct:
    def test_round_trip_error_bound(self, store):
        times, values, result = compress_walk(epsilon=0.75)
        store.append("walk", result.recordings, epsilon=0.75)
        approx = store.reconstruct("walk")
        deviations = np.abs(approx.deviations(list(zip(times, values))))
        assert float(deviations.max()) <= 0.75 + 1e-8

    def test_time_range_read_keeps_context_recording(self, store):
        times, values, result = compress_walk()
        store.append("walk", result.recordings)
        midpoint = float(times[len(times) // 2])
        subset = store.read("walk", start=midpoint, end=float(times[-1]))
        assert subset
        # The first returned recording may precede the range so the
        # approximation still covers it.
        assert subset[0].time <= midpoint
        assert all(r.time <= float(times[-1]) or r is subset[-1] for r in subset)

    def test_range_reconstruction_covers_requested_points(self, store):
        times, values, result = compress_walk(epsilon=0.5)
        store.append("walk", result.recordings, epsilon=0.5)
        lo, hi = float(times[200]), float(times[400])
        approx = store.reconstruct("walk", start=lo, end=hi)
        in_range = [(t, v) for t, v in zip(times, values) if lo <= t <= hi]
        deviations = np.abs(approx.deviations(in_range))
        assert float(deviations.max()) <= 0.5 + 1e-8

    def test_constant_family_round_trip(self, store):
        from repro.core.cache import CacheFilter

        times, values, _ = compress_walk()
        result = CacheFilter(1.0).process(zip(times, values))
        store.append("cache-walk", result.recordings, epsilon=1.0)
        approx = store.reconstruct("cache-walk")
        deviations = np.abs(approx.deviations(list(zip(times, values))))
        assert float(deviations.max()) <= 1.0 + 1e-8

    def test_multidimensional_round_trip(self, store):
        rng = np.random.default_rng(5)
        times = np.arange(300.0)
        values = np.cumsum(rng.normal(0, 0.4, (300, 3)), axis=0)
        result = SwingFilter(0.6).process(zip(times, values))
        store.append("vector", result.recordings, epsilon=[0.6, 0.6, 0.6])
        approx = store.reconstruct("vector")
        deviations = np.abs(approx.deviations(list(zip(times, values))))
        assert float(deviations.max()) <= 0.6 + 1e-8
        assert store.describe("vector").dimensions == 3
