"""Tests for the cache (piece-wise constant) filters."""

import numpy as np
import pytest

from repro.approximation.reconstruct import reconstruct
from repro.core.cache import CacheFilter, MeanCacheFilter, MidrangeCacheFilter
from repro.data.patterns import constant_signal, step_signal

from conftest import assert_within_bound


class TestFirstValueCache:
    def test_constant_signal_single_recording(self):
        times, values = constant_signal(length=50, value=3.0)
        result = CacheFilter(0.1).process(zip(times, values))
        assert result.recording_count == 1
        assert result.compression_ratio == 50.0

    def test_within_epsilon_filtered_out(self):
        stream = [(0.0, 1.0), (1.0, 1.4), (2.0, 0.6), (3.0, 1.49)]
        result = CacheFilter(0.5).process(stream)
        assert result.recording_count == 1

    def test_violation_triggers_recording(self):
        stream = [(0.0, 1.0), (1.0, 1.6)]
        result = CacheFilter(0.5).process(stream)
        assert result.recording_count == 2
        assert result.recordings[1].component(0) == pytest.approx(1.6)

    def test_step_signal_two_recordings(self):
        times, values = step_signal(length=40, low=0.0, high=10.0)
        result = CacheFilter(1.0).process(zip(times, values))
        assert result.recording_count == 2

    def test_recording_value_is_first_of_interval(self):
        stream = [(0.0, 1.0), (1.0, 1.4), (2.0, 5.0), (3.0, 5.3)]
        result = CacheFilter(0.5).process(stream)
        assert [r.component(0) for r in result.recordings] == [1.0, 5.0]

    def test_error_bound_on_random_walk(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 0.75
        result = CacheFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_multidimensional_any_dimension_triggers(self):
        stream = [(0.0, [0.0, 0.0]), (1.0, [0.1, 0.9]), (2.0, [0.1, 0.8])]
        result = CacheFilter(0.5).process(stream)
        # Second point violates in dimension 2 only; third stays within the
        # bound of the new recording in both dimensions.
        assert result.recording_count == 2

    def test_hold_kind(self):
        result = CacheFilter(0.5).process([(0.0, 1.0)])
        assert all(r.kind.value == "hold" for r in result.recordings)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            CacheFilter(0.5, mode="median")

    def test_max_lag_forces_updates(self):
        times = np.arange(20.0)
        values = np.zeros(20)
        bounded = CacheFilter(0.5, max_lag=5).process(zip(times, values))
        unbounded = CacheFilter(0.5).process(zip(times, values))
        assert unbounded.recording_count == 1
        assert bounded.recording_count == 4


class TestMidrangeCache:
    def test_accepts_spread_up_to_two_epsilon(self):
        stream = [(0.0, 0.0), (1.0, 1.9), (2.0, 0.1), (3.0, 2.0)]
        result = MidrangeCacheFilter(1.0).process(stream)
        assert result.recording_count == 1

    def test_rejects_spread_beyond_two_epsilon(self):
        stream = [(0.0, 0.0), (1.0, 2.1)]
        result = MidrangeCacheFilter(1.0).process(stream)
        assert result.recording_count == 2

    def test_recording_is_midrange(self):
        stream = [(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]
        result = MidrangeCacheFilter(1.0).process(stream)
        assert result.recording_count == 1
        assert result.recordings[0].component(0) == pytest.approx(1.0)

    def test_beats_or_matches_first_value_cache(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 1.0
        first = CacheFilter(epsilon).process(zip(times, values))
        midrange = MidrangeCacheFilter(epsilon).process(zip(times, values))
        assert midrange.recording_count <= first.recording_count

    def test_error_bound(self, noisy_walk):
        times, values = noisy_walk
        epsilon = 1.0
        result = MidrangeCacheFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)


class TestMeanCache:
    def test_recording_is_mean(self):
        stream = [(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]
        result = MeanCacheFilter(1.0).process(stream)
        assert result.recording_count == 1
        assert result.recordings[0].component(0) == pytest.approx(0.5)

    def test_error_bound(self, smooth_walk):
        times, values = smooth_walk
        epsilon = 0.5
        result = MeanCacheFilter(epsilon).process(zip(times, values))
        assert_within_bound(result, times, values, epsilon)

    def test_rejects_point_that_breaks_mean_guarantee(self):
        # Mean of (0, 10) is 5: both endpoints deviate by 5 > epsilon=1.
        result = MeanCacheFilter(1.0).process([(0.0, 0.0), (1.0, 10.0)])
        assert result.recording_count == 2


class TestReconstruction:
    def test_piecewise_constant_reconstruction(self):
        stream = [(0.0, 1.0), (1.0, 1.2), (2.0, 5.0), (3.0, 5.2)]
        result = CacheFilter(0.5).process(stream)
        approx = reconstruct(result)
        assert approx.value_at(0.5)[0] == pytest.approx(1.0)
        assert approx.value_at(2.5)[0] == pytest.approx(5.0)

    def test_compression_never_below_one(self, sst_signal):
        times, values = sst_signal
        result = CacheFilter(0.004).process(zip(times, values))
        assert result.compression_ratio >= 1.0
