"""Offline integrity checking: verify_store, --repair, and migrate recovery."""

from __future__ import annotations

import json
import shutil

import numpy as np
import pytest

from repro.cli import main
from repro.core.types import Recording, RecordingKind
from repro.storage import (
    SegmentStore,
    migrate_store,
    open_store,
    recover_interrupted_migration,
    verify_store,
)
from repro.storage.wal import JOURNAL_NAME

BACKENDS = ["block-log", "columnar"]


def recordings(n, start=0.0):
    return [
        Recording(
            float(start + i),
            np.array([float(np.sin((start + i) / 3.0))]),
            RecordingKind.SEGMENT_START,
        )
        for i in range(n)
    ]


def build_store(directory, backend, streams=("s",), records=50):
    store = SegmentStore(directory, backend=backend, block_records=8)
    for name in streams:
        store.append(name, recordings(records))
        store.pyramid_levels(name)
    store.flush()
    path = {name: store.describe(name).filename for name in streams}
    store.close()
    return path


class TestVerifyStore:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_intact_store_verifies_clean(self, tmp_path, backend):
        build_store(tmp_path, backend)
        report = verify_store(tmp_path)
        assert report.ok
        assert report.backend == backend
        assert [check.name for check in report.streams] == ["s"]
        assert report.streams[0].recordings == 50
        assert report.streams[0].ok

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_truncated_log_is_reported(self, tmp_path, backend):
        filenames = build_store(tmp_path, backend)
        log = tmp_path / filenames["s"]
        log.write_bytes(log.read_bytes()[:-7])
        report = verify_store(tmp_path)
        assert not report.ok
        assert any("s" == check.name and not check.ok for check in report.streams)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_missing_log_is_reported(self, tmp_path, backend):
        filenames = build_store(tmp_path, backend)
        (tmp_path / filenames["s"]).unlink()
        report = verify_store(tmp_path)
        assert not report.ok

    def test_count_mismatch_is_reported(self, tmp_path):
        build_store(tmp_path, "block-log")
        payload = json.loads((tmp_path / "catalog.json").read_text())
        payload["streams"][0]["recordings"] += 3
        (tmp_path / "catalog.json").write_text(json.dumps(payload))
        report = verify_store(tmp_path)
        assert not report.ok
        assert any("recordings" in issue for issue in report.all_issues())

    def test_corrupt_summary_fails_parity_but_passes_fast(self, tmp_path):
        build_store(tmp_path, "block-log")
        payload = json.loads((tmp_path / "catalog.json").read_text())
        payload["streams"][0]["blocks"][0][4]["integral"][0] += 1.0
        (tmp_path / "catalog.json").write_text(json.dumps(payload))
        assert not verify_store(tmp_path).ok
        assert verify_store(tmp_path, parity=False).ok

    def test_corrupt_catalog_json_is_reported(self, tmp_path):
        build_store(tmp_path, "block-log")
        (tmp_path / "catalog.json").write_text("{not json")
        report = verify_store(tmp_path)
        assert not report.ok

    def test_torn_journal_tail_is_reported_not_fatal(self, tmp_path):
        store = SegmentStore(tmp_path, autoflush=False)
        store.append("s", recordings(10))
        store._journal.close()  # crash: journal carries the append
        del store
        with open(tmp_path / JOURNAL_NAME, "ab") as handle:
            handle.write(b"\x07\x07\x07")  # torn suffix
        report = verify_store(tmp_path)
        # The torn tail is an issue, but the consistent prefix still counts.
        assert report.journal_records >= 1
        assert any("journal" in issue for issue in report.all_issues())

    def test_not_a_store_is_reported(self, tmp_path):
        report = verify_store(tmp_path / "nowhere")
        assert not report.ok

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_repair_truncates_to_consistent_prefix(self, tmp_path, backend):
        filenames = build_store(tmp_path, backend)
        log = tmp_path / filenames["s"]
        log.write_bytes(log.read_bytes()[:-7])
        report = verify_store(tmp_path, repair=True)
        assert report.ok, report.all_issues()
        assert report.repairs
        # The repaired store reopens and keeps working.
        store = SegmentStore(tmp_path)
        n = store.describe("s").recordings
        assert 0 <= n < 50
        store.append("s", recordings(10, start=1000.0))
        assert store.describe("s").recordings == n + 10
        store.close()

    def test_sharded_store_verifies_each_shard(self, tmp_path):
        store = open_store(tmp_path, shards=2)
        store.append("a", recordings(30))
        store.append("b", recordings(30))
        store.close()
        report = verify_store(tmp_path)
        assert report.ok
        assert len(report.shards) == 2
        names = sorted(
            check.name for sub in report.shards for check in sub.streams
        )
        assert names == ["a", "b"]

    def test_sharded_store_surfaces_shard_damage(self, tmp_path):
        store = open_store(tmp_path, shards=2)
        store.append("a", recordings(30))
        store.append("b", recordings(30))
        filename = store.describe("a").filename
        store.close()
        victim = next(tmp_path.glob(f"shard-*/{filename}"))
        victim.write_bytes(victim.read_bytes()[:-5])
        report = verify_store(tmp_path)
        assert not report.ok
        assert any("a" in issue for issue in report.all_issues())


class TestVerifyCli:
    def test_clean_store_exits_zero(self, tmp_path, capsys):
        build_store(tmp_path, "columnar")
        assert main(["verify", "--store", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "verification passed" in out
        assert "columnar" in out

    def test_damaged_store_exits_nonzero(self, tmp_path, capsys):
        filenames = build_store(tmp_path, "block-log")
        log = tmp_path / filenames["s"]
        log.write_bytes(log.read_bytes()[:-7])
        assert main(["verify", "--store", str(tmp_path)]) == 1
        err = capsys.readouterr().err
        assert "verification FAILED" in err

    def test_repair_flag_fixes_and_exits_zero(self, tmp_path, capsys):
        filenames = build_store(tmp_path, "block-log")
        log = tmp_path / filenames["s"]
        log.write_bytes(log.read_bytes()[:-7])
        assert main(["verify", "--store", str(tmp_path), "--repair"]) == 0
        out = capsys.readouterr().out
        assert "repaired" in out

    def test_fast_skips_parity(self, tmp_path, capsys):
        build_store(tmp_path, "block-log")
        payload = json.loads((tmp_path / "catalog.json").read_text())
        payload["streams"][0]["blocks"][0][4]["integral"][0] += 1.0
        (tmp_path / "catalog.json").write_text(json.dumps(payload))
        assert main(["verify", "--store", str(tmp_path), "--fast"]) == 0
        capsys.readouterr()


class TestMigrateRecovery:
    def make_store(self, directory):
        build_store(directory, "block-log")

    def test_clean_store_needs_no_recovery(self, tmp_path):
        directory = tmp_path / "store"
        self.make_store(directory)
        assert recover_interrupted_migration(directory) is None

    def test_backup_without_store_is_restored(self, tmp_path):
        directory = tmp_path / "store"
        self.make_store(directory)
        directory.rename(directory.with_name("store.migrate-old"))
        (directory.with_name("store.migrate-tmp")).mkdir()
        assert recover_interrupted_migration(directory) == "restored"
        assert verify_store(directory).ok
        assert not directory.with_name("store.migrate-old").exists()
        assert not directory.with_name("store.migrate-tmp").exists()

    def test_store_with_leftover_backup_is_finalized(self, tmp_path):
        directory = tmp_path / "store"
        self.make_store(directory)
        shutil.copytree(directory, directory.with_name("store.migrate-old"))
        assert recover_interrupted_migration(directory) == "finalized"
        assert not directory.with_name("store.migrate-old").exists()
        assert verify_store(directory).ok

    def test_store_with_leftover_staging_is_cleaned(self, tmp_path):
        directory = tmp_path / "store"
        self.make_store(directory)
        shutil.copytree(directory, directory.with_name("store.migrate-tmp"))
        assert recover_interrupted_migration(directory) == "cleaned"
        assert not directory.with_name("store.migrate-tmp").exists()

    def test_migrate_store_self_heals_on_entry(self, tmp_path):
        directory = tmp_path / "store"
        self.make_store(directory)
        directory.rename(directory.with_name("store.migrate-old"))
        report = migrate_store(directory, "columnar")
        assert report.changed and report.target == "columnar"
        assert verify_store(directory).ok
