"""Tests for the multi-stream fleet manager."""

import numpy as np
import pytest

from repro.core.swing import SwingFilter
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.storage.segment_store import SegmentStore
from repro.streams.multiplex import StreamSet


def walk(seed, length=400):
    return random_walk(RandomWalkConfig(length=length, max_delta=0.3, seed=seed))


class TestStreamSet:
    def test_requires_configuration(self):
        with pytest.raises(ValueError):
            StreamSet()
        with pytest.raises(ValueError):
            StreamSet(filter_name="slide")

    def test_observe_routes_by_stream_name(self):
        streams = StreamSet("swing", epsilon=0.5)
        times_a, values_a = walk(1)
        times_b, values_b = walk(2)
        for t, a, b in zip(times_a, values_a, values_b):
            streams.observe("sensor-a", t, a)
            streams.observe("sensor-b", t, b)
        report = streams.close()
        assert report.streams == 2
        assert report.points == 2 * len(times_a)
        assert report.recordings >= 2
        assert report.compression_ratio > 1.0
        assert streams.stream_names() == ["sensor-a", "sensor-b"]

    def test_error_bound_per_stream(self):
        epsilon = 0.4
        streams = StreamSet("slide", epsilon=epsilon)
        data = {f"s{i}": walk(10 + i) for i in range(3)}
        for name, (times, values) in data.items():
            for t, v in zip(times, values):
                streams.observe(name, t, v)
        streams.close()
        for name, (times, values) in data.items():
            approx = streams.approximation(name)
            deviations = np.abs(approx.deviations(list(zip(times, values))))
            assert float(deviations.max()) <= epsilon + 1e-8

    def test_unknown_stream_approximation(self):
        streams = StreamSet("swing", epsilon=0.5)
        with pytest.raises(KeyError):
            streams.approximation("missing")

    def test_observe_after_close_rejected(self):
        streams = StreamSet("swing", epsilon=0.5)
        streams.observe("a", 0.0, 1.0)
        streams.close()
        with pytest.raises(RuntimeError):
            streams.observe("a", 1.0, 2.0)

    def test_close_is_idempotent(self):
        streams = StreamSet("swing", epsilon=0.5)
        streams.observe("a", 0.0, 1.0)
        first = streams.close()
        second = streams.close()
        assert first == second

    def test_custom_filter_factory(self):
        streams = StreamSet(filter_factory=lambda: SwingFilter(0.25, max_lag=50))
        times, values = walk(5)
        for t, v in zip(times, values):
            streams.observe("only", t, v)
        report = streams.close()
        assert report.streams == 1
        assert report.worst_lag <= 50

    def test_archiving_into_segment_store(self, tmp_path):
        store = SegmentStore(tmp_path / "archive")
        epsilon = 0.5
        streams = StreamSet("slide", epsilon=epsilon, store=store)
        data = {f"s{i}": walk(20 + i, length=300) for i in range(2)}
        for name, (times, values) in data.items():
            for t, v in zip(times, values):
                streams.observe(name, t, v)
        report = streams.close()
        # Everything that was transmitted is also archived.
        assert sorted(store.stream_names()) == sorted(data)
        archived = sum(store.describe(name).recordings for name in store.stream_names())
        assert archived == report.recordings
        # Archived data still honours the error bound.
        for name, (times, values) in data.items():
            approx = store.reconstruct(name)
            deviations = np.abs(approx.deviations(list(zip(times, values))))
            assert float(deviations.max()) <= epsilon + 1e-8

    def test_report_before_close(self):
        streams = StreamSet("swing", epsilon=0.5)
        times, values = walk(7, length=100)
        for t, v in zip(times, values):
            streams.observe("a", t, v)
        interim = streams.report()
        assert interim.points == 100
        assert interim.streams == 1


class TestBatchIngestion:
    def test_observe_batch_matches_per_point(self):
        times, values = walk(31)
        per_point = StreamSet("swing", epsilon=0.5)
        batched = StreamSet("swing", epsilon=0.5)
        for t, v in zip(times, values):
            per_point.observe("a", t, v)
        for lo in range(0, len(times), 64):
            batched.observe_batch("a", times[lo : lo + 64], values[lo : lo + 64])
        report_a = per_point.close()
        report_b = batched.close()
        assert report_a.points == report_b.points
        assert report_a.recordings == report_b.recordings
        grid = np.linspace(float(times[0]), float(times[-1]), 100)
        np.testing.assert_array_equal(
            per_point.approximation("a").values_at(grid),
            batched.approximation("a").values_at(grid),
        )

    def test_run_arrays_ingests_a_fleet(self, tmp_path):
        store = SegmentStore(tmp_path / "archive", autoflush=False)
        streams = StreamSet("swing", epsilon=0.5, store=store)
        data = {f"s{i}": walk(40 + i, length=300) for i in range(3)}
        report = streams.run_arrays(data, chunk_size=128)
        assert report.streams == 3
        assert report.points == 3 * 300
        # Everything transmitted is archived, across all streams.
        assert sorted(store.stream_names()) == sorted(data)
        archived = sum(store.describe(name).recordings for name in store.stream_names())
        assert archived == report.recordings
        for name, (times, values) in data.items():
            approx = store.reconstruct(name)
            deviations = np.abs(approx.deviations(list(zip(times, values))))
            assert float(deviations.max()) <= 0.5 + 1e-8

    def test_run_arrays_without_close_keeps_accepting(self):
        streams = StreamSet("swing", epsilon=0.5)
        times, values = walk(51, length=100)
        streams.run_arrays({"a": (times, values)}, close=False)
        streams.observe("a", float(times[-1]) + 1.0, float(values[-1]))
        report = streams.close()
        assert report.points == 101

    def test_archiving_into_sharded_store(self, tmp_path):
        from repro.storage import ShardedStore

        store = ShardedStore(tmp_path / "archive", 4, autoflush=False)
        epsilon = 0.4
        streams = StreamSet("slide", epsilon=epsilon, store=store, archive_batch=32)
        data = {f"host-{i}/load": walk(60 + i, length=250) for i in range(5)}
        for name, (times, values) in data.items():
            for t, v in zip(times, values):
                streams.observe(name, t, v)
        report = streams.close()
        assert sorted(store.stream_names()) == sorted(data)
        archived = sum(store.describe(name).recordings for name in store.stream_names())
        assert archived == report.recordings
        for name, (times, values) in data.items():
            approx = store.reconstruct(name)
            deviations = np.abs(approx.deviations(list(zip(times, values))))
            assert float(deviations.max()) <= epsilon + 1e-8

    def test_archive_buffer_flushes_at_batch_size(self, tmp_path):
        class CountingStore(SegmentStore):
            appends = 0

            def append(self, name, recordings, epsilon=None):
                type(self).appends += 1
                return super().append(name, recordings, epsilon=epsilon)

        store = CountingStore(tmp_path / "archive")
        streams = StreamSet("cache", epsilon=0.01, store=store, archive_batch=64)
        times, values = walk(70, length=500)
        for t, v in zip(times, values):
            streams.observe("a", t, v)
        recordings_so_far = store.describe("a").recordings if "a" in store else 0
        streams.close()
        total = store.describe("a").recordings
        # Far fewer appends than archived recordings: buffering is in effect.
        assert CountingStore.appends <= int(np.ceil(total / 64)) + 1
        assert total >= recordings_so_far

    def test_invalid_archive_batch(self):
        with pytest.raises(ValueError):
            StreamSet("swing", epsilon=0.5, archive_batch=0)

    def test_observe_batch_after_close_rejected(self):
        streams = StreamSet("swing", epsilon=0.5)
        streams.observe("a", 0.0, 1.0)
        streams.close()
        with pytest.raises(RuntimeError):
            streams.observe_batch("a", [1.0], [2.0])


class FlakyFlushStore(SegmentStore):
    """A store whose next catalog flush raises *after* the log append.

    Models a transient persistence failure (full disk, yanked volume) in an
    autoflushing store: the recordings land in the log and the in-memory
    catalog, then the catalog write blows up.
    """

    def __init__(self, *args, **kwargs):
        self.fail_next_flush = False
        super().__init__(*args, **kwargs)

    def flush(self):
        if getattr(self, "fail_next_flush", False):
            self.fail_next_flush = False
            raise OSError("disk full")
        super().flush()


class TestArchiveFlushIdempotency:
    """`flush()` before `close()` archives every recording exactly once —
    even when a flush attempt fails after the append already persisted."""

    def test_flush_then_close_archives_once(self, tmp_path):
        store = SegmentStore(tmp_path / "archive", autoflush=False)
        streams = StreamSet("slide", epsilon=0.5, store=store, archive_batch=1000)
        times, values = walk(5)
        streams.observe_batch("s", times, values)
        streams.flush()
        streams.flush()  # idempotent: nothing left to archive
        report = streams.close()
        assert store.describe("s").recordings == report.recordings

    def test_failed_flush_does_not_double_archive(self, tmp_path):
        store = FlakyFlushStore(tmp_path / "archive")  # autoflush=True
        streams = StreamSet("slide", epsilon=0.5, store=store, archive_batch=1000)
        times, values = walk(6)
        half = len(times) // 2
        streams.observe_batch("s", times[:half], values[:half])
        streams.flush()  # registers the stream, archives the first half
        streams.observe_batch("s", times[half:], values[half:])
        store.fail_next_flush = True
        # The append persists the buffered recordings, then the catalog
        # flush fails: the error propagates, but the recordings must not
        # stay queued for a second append.
        with pytest.raises(OSError, match="disk full"):
            streams.flush()
        report = streams.close()  # pre-fix: duplicated or wedged on time order
        assert store.describe("s").recordings == report.recordings
        times_stored = [r.time for r in store.read("s")]
        assert times_stored == sorted(set(times_stored))

    def test_failed_append_keeps_recordings_buffered(self, tmp_path):
        """When the append provably did NOT land, the buffer is retained so
        a later flush still archives the recordings."""
        store = SegmentStore(tmp_path / "archive", autoflush=False)
        streams = StreamSet("slide", epsilon=0.5, store=store, archive_batch=1000)
        times, values = walk(7)
        streams.observe_batch("s", times, values)
        original_append = store.append
        calls = {"n": 0}

        def failing_append(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise OSError("transient")
            return original_append(*args, **kwargs)

        store.append = failing_append
        with pytest.raises(OSError, match="transient"):
            streams.flush()
        report = streams.close()  # retry succeeds, nothing lost or doubled
        assert store.describe("s").recordings == report.recordings
