"""Tests for the multi-stream fleet manager."""

import numpy as np
import pytest

from repro.core.swing import SwingFilter
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.storage.segment_store import SegmentStore
from repro.streams.multiplex import StreamSet


def walk(seed, length=400):
    return random_walk(RandomWalkConfig(length=length, max_delta=0.3, seed=seed))


class TestStreamSet:
    def test_requires_configuration(self):
        with pytest.raises(ValueError):
            StreamSet()
        with pytest.raises(ValueError):
            StreamSet(filter_name="slide")

    def test_observe_routes_by_stream_name(self):
        streams = StreamSet("swing", epsilon=0.5)
        times_a, values_a = walk(1)
        times_b, values_b = walk(2)
        for t, a, b in zip(times_a, values_a, values_b):
            streams.observe("sensor-a", t, a)
            streams.observe("sensor-b", t, b)
        report = streams.close()
        assert report.streams == 2
        assert report.points == 2 * len(times_a)
        assert report.recordings >= 2
        assert report.compression_ratio > 1.0
        assert streams.stream_names() == ["sensor-a", "sensor-b"]

    def test_error_bound_per_stream(self):
        epsilon = 0.4
        streams = StreamSet("slide", epsilon=epsilon)
        data = {f"s{i}": walk(10 + i) for i in range(3)}
        for name, (times, values) in data.items():
            for t, v in zip(times, values):
                streams.observe(name, t, v)
        streams.close()
        for name, (times, values) in data.items():
            approx = streams.approximation(name)
            deviations = np.abs(approx.deviations(list(zip(times, values))))
            assert float(deviations.max()) <= epsilon + 1e-8

    def test_unknown_stream_approximation(self):
        streams = StreamSet("swing", epsilon=0.5)
        with pytest.raises(KeyError):
            streams.approximation("missing")

    def test_observe_after_close_rejected(self):
        streams = StreamSet("swing", epsilon=0.5)
        streams.observe("a", 0.0, 1.0)
        streams.close()
        with pytest.raises(RuntimeError):
            streams.observe("a", 1.0, 2.0)

    def test_close_is_idempotent(self):
        streams = StreamSet("swing", epsilon=0.5)
        streams.observe("a", 0.0, 1.0)
        first = streams.close()
        second = streams.close()
        assert first == second

    def test_custom_filter_factory(self):
        streams = StreamSet(filter_factory=lambda: SwingFilter(0.25, max_lag=50))
        times, values = walk(5)
        for t, v in zip(times, values):
            streams.observe("only", t, v)
        report = streams.close()
        assert report.streams == 1
        assert report.worst_lag <= 50

    def test_archiving_into_segment_store(self, tmp_path):
        store = SegmentStore(tmp_path / "archive")
        epsilon = 0.5
        streams = StreamSet("slide", epsilon=epsilon, store=store)
        data = {f"s{i}": walk(20 + i, length=300) for i in range(2)}
        for name, (times, values) in data.items():
            for t, v in zip(times, values):
                streams.observe(name, t, v)
        report = streams.close()
        # Everything that was transmitted is also archived.
        assert sorted(store.stream_names()) == sorted(data)
        archived = sum(store.describe(name).recordings for name in store.stream_names())
        assert archived == report.recordings
        # Archived data still honours the error bound.
        for name, (times, values) in data.items():
            approx = store.reconstruct(name)
            deviations = np.abs(approx.deviations(list(zip(times, values))))
            assert float(deviations.max()) <= epsilon + 1e-8

    def test_report_before_close(self):
        streams = StreamSet("swing", epsilon=0.5)
        times, values = walk(7, length=100)
        for t, v in zip(times, values):
            streams.observe("a", t, v)
        interim = streams.report()
        assert interim.points == 100
        assert interim.streams == 1
