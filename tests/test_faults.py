"""Fault-injection shim tests, durability regressions, and the crash matrix.

Three layers:

* unit tests of :mod:`repro.testing.faults` itself;
* regression tests for specific durability fixes (checkpoint directory
  fsync, sink retry/degradation, atomic staging swaps);
* the cross-backend crash matrix (marked ``faults``): every I/O call of
  {append, compact, truncate, migrate, checkpoint} on each backend is
  failed (and, for data writes, torn) in turn, and the store must recover
  to a consistent prefix with the planner agreeing with a full decode.
"""

from __future__ import annotations

import errno
import shutil

import numpy as np
import pytest
from crash_harness import run_python_with_faults, run_with_fault, trace_operation

from repro.approximation.reconstruct import reconstruct
from repro.core.errors import DegradedSinkError
from repro.core.types import Recording, RecordingKind
from repro.pipeline.sinks import StoreSink
from repro.queries.aggregates import range_aggregate
from repro.queries.planner import plan_range_aggregate
from repro.runtime.checkpoint import CheckpointManager, IngestCheckpoint
from repro.storage import (
    SegmentStore,
    migrate_store,
    open_store,
    recover_interrupted_migration,
    verify_store,
)
from repro.testing import faults
from repro.testing.faults import FaultInjector, FaultRule, InjectedFault

BACKENDS = ["block-log", "columnar"]

BASE_RECORDS = 40
BATCH_RECORDS = 16


def recordings(n, start=0.0):
    return [
        Recording(
            float(start + i),
            np.array([float(np.sin((start + i) / 3.0))]),
            RecordingKind.SEGMENT_START,
        )
        for i in range(n)
    ]


def build_base_store(directory, backend):
    store = SegmentStore(
        directory, backend=backend, block_records=8, autoflush=False
    )
    store.append("s", recordings(BASE_RECORDS))
    store.pyramid_levels("s")
    store.flush()
    store.close()


# --------------------------------------------------------------------------- #
# The shim itself
# --------------------------------------------------------------------------- #
class TestFaultShim:
    def test_passthrough_without_injector(self, tmp_path):
        path = tmp_path / "f"
        with open(path, "wb") as handle:
            assert faults.write(handle, b"abc") == 3
            faults.fsync(handle)
        faults.replace(path, tmp_path / "g")
        faults.rename(tmp_path / "g", path)
        faults.fsync_dir(tmp_path)
        faults.crash_point("nowhere")
        assert path.read_bytes() == b"abc"

    def test_rule_fires_once_at_kth_match(self, tmp_path):
        rule = FaultRule(op="write", index=1, errno_code=errno.ENOSPC)
        path = tmp_path / "f"
        with faults.injected(FaultInjector([rule])):
            with open(path, "wb") as handle:
                faults.write(handle, b"one")
                with pytest.raises(InjectedFault) as caught:
                    faults.write(handle, b"two")
                assert caught.value.errno == errno.ENOSPC
                faults.write(handle, b"three")  # the rule is spent
        assert path.read_bytes() == b"onethree"

    def test_torn_write_keeps_prefix_then_raises(self, tmp_path):
        rule = FaultRule(op="write", action="torn", keep_bytes=4)
        path = tmp_path / "f"
        with faults.injected(FaultInjector([rule])):
            with open(path, "wb") as handle:
                with pytest.raises(InjectedFault):
                    faults.write(handle, b"0123456789")
        assert path.read_bytes() == b"0123"

    def test_path_filter_matches_substring(self, tmp_path):
        rule = FaultRule(op="write", path="victim")
        with faults.injected(FaultInjector([rule])):
            with open(tmp_path / "bystander", "wb") as handle:
                faults.write(handle, b"x")
            with open(tmp_path / "victim.log", "wb") as handle:
                with pytest.raises(InjectedFault):
                    faults.write(handle, b"x")

    def test_trace_records_every_call(self, tmp_path):
        injector = FaultInjector([])
        with faults.injected(injector):
            with open(tmp_path / "f", "wb") as handle:
                faults.write(handle, b"x")
                faults.fsync(handle)
            faults.fsync_dir(tmp_path)
        assert [op for op, _ in injector.trace] == ["write", "fsync", "fsync_dir"]

    def test_plan_round_trip(self):
        injector = FaultInjector(
            [FaultRule(op="replace", path="catalog", index=2, action="exit")],
            exit_at_count=7,
            exit_code=9,
        )
        clone = FaultInjector.from_plan(injector.to_plan())
        assert clone.exit_at_count == 7 and clone.exit_code == 9
        assert clone.rules[0].op == "replace" and clone.rules[0].action == "exit"

    def test_env_plan_installs_in_child(self, tmp_path):
        injector = FaultInjector(
            [FaultRule(op="crash_point", path="smoke", action="exit", exit_code=31)]
        )
        result = run_python_with_faults(
            "from repro.testing import faults\n"
            "assert faults.active() is not None\n"
            "faults.crash_point('smoke')\n",
            injector=injector,
        )
        assert result.returncode == 31


# --------------------------------------------------------------------------- #
# Durability regressions (the satellites)
# --------------------------------------------------------------------------- #
class TestCheckpointManagerDurability:
    def make_checkpoint(self, stream="s"):
        return IngestCheckpoint(
            stream=stream,
            filter_state=None,
            points_ingested=5,
            recordings_stored=3,
            chunk_size=128,
        )

    def test_save_fsyncs_file_and_directory(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        injector = FaultInjector([])
        with faults.injected(injector):
            manager.save(self.make_checkpoint())
        ops = [op for op, _ in injector.trace]
        assert ops == ["write", "fsync", "crash_point", "replace", "fsync_dir"]
        assert injector.trace[-1][1] == str(tmp_path)

    def test_failed_replace_leaves_previous_checkpoint_intact(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(self.make_checkpoint())
        newer = self.make_checkpoint()
        newer.points_ingested = 999
        rule = FaultRule(op="replace", path=".ckpt")
        with faults.injected(FaultInjector([rule])):
            with pytest.raises(InjectedFault):
                manager.save(newer)
        assert manager.load("s").points_ingested == 5

    def test_torn_staging_write_never_corrupts_checkpoint(self, tmp_path):
        manager = CheckpointManager(tmp_path)
        manager.save(self.make_checkpoint())
        rule = FaultRule(op="write", path=".tmp", action="torn", keep_bytes=10)
        with faults.injected(FaultInjector([rule])):
            with pytest.raises(InjectedFault):
                manager.save(self.make_checkpoint())
        assert manager.load("s").points_ingested == 5


class TestSinkRetryAndDegradation:
    def test_transient_append_failure_is_retried(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.pipeline.sinks._FLUSH_BACKOFF", 0.0)
        store = SegmentStore(tmp_path, autoflush=False)
        sink = StoreSink(store, "s", archive_batch=4)
        rule = FaultRule(op="write", path=".seg", errno_code=errno.ENOSPC)
        with faults.injected(FaultInjector([rule])):
            sink.write(recordings(4))  # first try hits ENOSPC, retry lands
        assert store.describe("s").recordings == 4
        assert sink.pending == ()
        store.close()

    def test_persistent_failure_degrades_with_buffer_attached(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setattr("repro.pipeline.sinks._FLUSH_BACKOFF", 0.0)
        store = SegmentStore(tmp_path, autoflush=False)
        sink = StoreSink(store, "s", archive_batch=4)
        rules = [
            FaultRule(op="write", path=".seg", errno_code=errno.ENOSPC)
            for _ in range(8)
        ]
        with faults.injected(FaultInjector(rules)):
            with pytest.raises(DegradedSinkError) as caught:
                sink.write(recordings(4))
        assert len(caught.value.recordings) == 4
        assert len(sink.pending) == 4  # still queued: nothing lost
        assert "s" not in store or store.describe("s").recordings == 0
        # The condition cleared: the next flush archives exactly once.
        sink.flush()
        assert store.describe("s").recordings == 4
        store.close()

    def test_non_transient_failure_is_not_retried(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.pipeline.sinks._FLUSH_BACKOFF", 0.0)
        store = SegmentStore(tmp_path, autoflush=False)
        sink = StoreSink(store, "s", archive_batch=4)
        injector = FaultInjector(
            [FaultRule(op="write", path=".seg", errno_code=errno.EIO)]
        )
        with faults.injected(injector):
            with pytest.raises(InjectedFault):
                sink.write(recordings(4))
        writes = [op for op, path in injector.trace if op == "write" and ".seg" in path]
        assert len(writes) == 1  # EIO is fatal: exactly one attempt
        assert len(sink.pending) == 4
        store.close()


# --------------------------------------------------------------------------- #
# Crash matrix machinery
# --------------------------------------------------------------------------- #
def full_arrays(n_total):
    expected = recordings(n_total)
    kinds = np.array([0] * n_total, dtype=np.uint8)
    times = np.array([r.time for r in expected])
    values = np.vstack([r.value for r in expected])
    return kinds, times, values


def assert_recovered_consistent(directory, allowed_counts, max_count):
    """The recovery contract every matrix cell must satisfy."""
    store = open_store(directory, autoflush=False)
    try:
        kinds, times, values = store.read_arrays("s")
        n = times.shape[0]
        assert n in allowed_counts, f"recovered {n} recordings, allowed {allowed_counts}"
        ek, et, ev = full_arrays(max_count)
        np.testing.assert_array_equal(kinds, ek[:n])
        np.testing.assert_array_equal(times, et[:n])
        np.testing.assert_array_equal(values, ev[:n])
        assert np.all(np.diff(times) > 0)
        if n >= 2:
            planned = plan_range_aggregate(store, "s", times[0], times[-1], 0)
            brute = range_aggregate(
                reconstruct(store.read("s")), times[0], times[-1]
            )
            for field in ("minimum", "maximum", "mean", "integral"):
                assert abs(getattr(planned, field) - getattr(brute, field)) <= 1e-9
        store.flush()
    finally:
        store.close()
    report = verify_store(directory)
    assert report.ok, report.all_issues()


def op_append(directory, backend):
    store = SegmentStore(directory, autoflush=False)
    store.append("s", recordings(BATCH_RECORDS, start=BASE_RECORDS))
    store.flush()
    store.close()


def op_compact(directory, backend):
    store = SegmentStore(directory, autoflush=False)
    store.compact("s")
    store.flush()
    store.close()


def op_truncate(directory, backend):
    store = SegmentStore(directory, autoflush=False)
    store.truncate_stream("s", 20)
    store.flush()
    store.close()


def op_checkpoint(directory, backend):
    store = SegmentStore(directory, autoflush=False)
    store.append("s", recordings(BATCH_RECORDS, start=BASE_RECORDS))
    store.checkpoint(durable=True)
    store.close()


def op_migrate(directory, backend):
    other = "columnar" if backend == "block-log" else "block-log"
    migrate_store(directory, other)


APPEND_RANGE = set(range(BASE_RECORDS, BASE_RECORDS + BATCH_RECORDS + 1))

#: op name -> (operation, allowed recovered counts, prefix reference length)
MATRIX_OPS = {
    "append": (op_append, APPEND_RANGE, BASE_RECORDS + BATCH_RECORDS),
    "compact": (op_compact, {BASE_RECORDS}, BASE_RECORDS),
    "truncate": (op_truncate, {20, BASE_RECORDS}, BASE_RECORDS),
    "checkpoint": (op_checkpoint, APPEND_RANGE, BASE_RECORDS + BATCH_RECORDS),
    "migrate": (op_migrate, {BASE_RECORDS}, BASE_RECORDS),
}


def run_matrix_cell(tmp_path, backend, op_name, tear_writes=False):
    operation, allowed, max_count = MATRIX_OPS[op_name]
    template = tmp_path / "template"
    build_base_store(template, backend)

    dry = tmp_path / "dry"
    shutil.copytree(template, dry)
    trace = trace_operation(lambda: operation(dry, backend))
    assert trace, f"{op_name} on {backend} made no interceptable I/O calls"

    trials = 0
    for index, (op, path) in enumerate(trace):
        if tear_writes and op != "write":
            continue
        work = tmp_path / f"work-{index}"
        shutil.copytree(template, work)
        if tear_writes:
            rule = FaultRule(op="write", index=trials, action="torn", keep_bytes=13)
        else:
            rule = FaultRule(index=index)
        exc = run_with_fault(lambda: operation(work, backend), rule)
        trials += 1
        if op_name == "migrate":
            recover_interrupted_migration(work)
        assert_recovered_consistent(work, allowed, max_count)
        shutil.rmtree(work)
    assert trials > 0


@pytest.mark.faults
class TestCrashMatrix:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("op_name", sorted(MATRIX_OPS))
    def test_fault_at_every_io_call(self, tmp_path, backend, op_name):
        run_matrix_cell(tmp_path, backend, op_name)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("op_name", ["append", "checkpoint"])
    def test_torn_write_at_every_data_write(self, tmp_path, backend, op_name):
        run_matrix_cell(tmp_path, backend, op_name, tear_writes=True)


class TestCrashMatrixSmoke:
    """A cheap unmarked slice of the matrix so tier-1 still covers the path."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_failed_first_append_write_recovers(self, tmp_path, backend):
        template = tmp_path / "store"
        build_base_store(template, backend)
        rule = FaultRule(op="write", path=".seg")
        exc = run_with_fault(lambda: op_append(template, backend), rule)
        assert isinstance(exc, InjectedFault)
        assert_recovered_consistent(
            template, {BASE_RECORDS}, BASE_RECORDS + BATCH_RECORDS
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fault_at_checkpoint_replace_keeps_journal(self, tmp_path, backend):
        template = tmp_path / "store"
        build_base_store(template, backend)
        rule = FaultRule(op="replace", path="catalog.json")
        exc = run_with_fault(lambda: op_checkpoint(template, backend), rule)
        assert isinstance(exc, InjectedFault)
        # The checkpoint never landed, so the journal must still carry the
        # append for replay.
        assert_recovered_consistent(
            template,
            {BASE_RECORDS + BATCH_RECORDS},
            BASE_RECORDS + BATCH_RECORDS,
        )


# --------------------------------------------------------------------------- #
# Hard kills (os._exit) at named crash points — subprocess-based
# --------------------------------------------------------------------------- #
CHILD_CHECKPOINT_FLUSH = """
import numpy as np
from repro.core.types import Recording, RecordingKind
from repro.storage import SegmentStore

store = SegmentStore({directory!r}, autoflush=False)
store.append("s", [
    Recording(float(40 + i), np.array([float(np.sin((40 + i) / 3.0))]),
              RecordingKind.SEGMENT_START)
    for i in range(16)
])
store.flush()
store.close()
print("survived")
"""


@pytest.mark.faults
class TestHardKills:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize(
        "point, expect",
        [
            ("catalog.checkpoint.before_replace", BASE_RECORDS + BATCH_RECORDS),
            ("catalog.checkpoint.after_replace", BASE_RECORDS + BATCH_RECORDS),
        ],
    )
    def test_kill_at_checkpoint_crash_points(self, tmp_path, backend, point, expect):
        build_base_store(tmp_path / "store", backend)
        injector = FaultInjector(
            [FaultRule(op="crash_point", path=point, action="exit", exit_code=23)]
        )
        result = run_python_with_faults(
            CHILD_CHECKPOINT_FLUSH.format(directory=str(tmp_path / "store")),
            injector=injector,
        )
        assert result.returncode == 23, result.stderr
        # Before the replace: the old checkpoint plus the journal carry the
        # append.  After it: the new checkpoint alone carries it.  Either
        # way the append survives and the store verifies clean.
        assert_recovered_consistent(tmp_path / "store", {expect}, expect)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kill_between_migrate_renames_is_restorable(self, tmp_path, backend):
        directory = tmp_path / "store"
        build_base_store(directory, backend)
        other = "columnar" if backend == "block-log" else "block-log"
        injector = FaultInjector(
            [
                FaultRule(
                    op="crash_point",
                    path="migrate.between_renames",
                    action="exit",
                    exit_code=23,
                )
            ]
        )
        result = run_python_with_faults(
            f"from repro.storage import migrate_store\n"
            f"migrate_store({str(directory)!r}, {other!r})\n",
            injector=injector,
        )
        assert result.returncode == 23, result.stderr
        assert not directory.exists()  # the canonical path is gone...
        assert directory.with_name("store.migrate-old").exists()
        assert recover_interrupted_migration(directory) == "restored"
        assert_recovered_consistent(directory, {BASE_RECORDS}, BASE_RECORDS)
        # ...and the migration can simply be re-run to completion.
        report = migrate_store(directory, other)
        assert report.changed and report.target == other
        assert_recovered_consistent(directory, {BASE_RECORDS}, BASE_RECORDS)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_kill_swept_across_every_io_call(self, tmp_path, backend):
        """exit_at_count sweep: die at the n-th shim call for every n."""
        template = tmp_path / "template"
        build_base_store(template, backend)
        kills = 0
        for count in range(1, 200):
            work = tmp_path / f"work-{count}"
            shutil.copytree(template, work)
            injector = FaultInjector([], exit_at_count=count, exit_code=23)
            result = run_python_with_faults(
                CHILD_CHECKPOINT_FLUSH.format(directory=str(work)),
                injector=injector,
            )
            if result.returncode == 0:
                # The child made fewer than ``count`` shim calls and ran to
                # completion: the sweep has covered every call.
                assert "survived" in result.stdout
                break
            assert result.returncode == 23, (count, result.stderr, result.stdout)
            kills += 1
            assert_recovered_consistent(
                work,
                APPEND_RANGE,
                BASE_RECORDS + BATCH_RECORDS,
            )
            shutil.rmtree(work)
        else:
            pytest.fail("child never ran to completion within the sweep bound")
        assert kills > 0
