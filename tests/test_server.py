"""Integration tests for the StreamDB network service.

A real :class:`~repro.server.service.StreamDBServer` runs on an ephemeral
loopback port for every test — either inside ``asyncio.run`` (async client
tests, fault injection) or on a background thread (blocking-client tests) —
and the assertions are end-to-end: what a client reads over the wire must be
bit-identical to what a local :class:`~repro.api.session.StreamDB` session
produces from the same points.
"""

from __future__ import annotations

import asyncio
import os
import signal
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

import repro
import repro.client
from crash_harness import REPO_SRC, make_workload
from repro.api import FilterSpec
from repro.client import AsyncStreamClient, ServerError, StreamClient
from repro.server import BroadcastHub, StreamDBServer
from repro.server.protocol import (
    CODEC_JSON,
    ProtocolError,
    decode_body,
    encode_frame,
    recordings_from_wire,
    recordings_to_wire,
)
from repro.testing import faults

EPSILON = 0.25
FILTER = FilterSpec("slide", epsilon=EPSILON)


def reference_recordings(directory, times, values, name="ref"):
    """What a local session records for this workload (the parity oracle)."""
    with repro.open(directory, filter=FILTER) as db:
        db.append(name, times, values)
        db.seal(name)
        return db.read(name)


def assert_recordings_identical(actual, expected):
    assert len(actual) == len(expected)
    for left, right in zip(actual, expected):
        assert left.kind == right.kind
        assert left.time == right.time
        np.testing.assert_array_equal(np.asarray(left.value), np.asarray(right.value))


class ServerHarness:
    """Host a StreamDBServer on a daemon thread; blocking clients connect."""

    def __init__(self, directory, **server_kwargs):
        self._directory = directory
        self._kwargs = server_kwargs
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = None
        self.port = None
        self.error = None

    def __enter__(self):
        self._thread = threading.Thread(target=self._host, daemon=True)
        self._thread.start()
        assert self._ready.wait(timeout=30), "server did not start"
        if self.error is not None:
            raise self.error
        return self

    def __exit__(self, exc_type, exc, tb):
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)
        assert not self._thread.is_alive(), "server thread did not stop"

    def _host(self):
        async def main():
            db = repro.open(self._directory, filter=FILTER)
            server = StreamDBServer(db, port=0, **self._kwargs)
            try:
                await server.start()
            except BaseException:
                db.close()
                raise
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self.port = server.port
            self._ready.set()
            try:
                await self._stop.wait()
            finally:
                await server.aclose()

        try:
            asyncio.run(main())
        except BaseException as error:  # surface startup/shutdown failures
            self.error = error
        finally:
            self._ready.set()

    def connect(self, **kwargs):
        return repro.client.connect("127.0.0.1", self.port, **kwargs)


# --------------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_frame_roundtrip(self):
        body = {"id": 7, "op": "ingest", "times": [0.1, 0.2], "values": [1.0, -2.5]}
        frame = encode_frame(body, CODEC_JSON)
        decoded = decode_body(frame[4:5], frame[5:])
        assert decoded == body

    def test_floats_roundtrip_bit_identical(self):
        rng = np.random.default_rng(11)
        values = list(rng.normal(0.0, 1e6, 256)) + [1e-308, 0.1 + 0.2]
        frame = encode_frame({"values": values}, CODEC_JSON)
        decoded = decode_body(frame[4:5], frame[5:])
        assert decoded["values"] == values

    def test_recordings_roundtrip(self, tmp_path):
        times, values = make_workload(seed=1, length=400)
        recordings = reference_recordings(tmp_path / "store", times, values)
        wired = recordings_from_wire(recordings_to_wire(recordings))
        assert_recordings_identical(wired, recordings)

    def test_unknown_codec_rejected(self):
        with pytest.raises(ProtocolError):
            decode_body(b"X", b"{}")


# --------------------------------------------------------------------------- #
# Ingest → query parity over the wire
# --------------------------------------------------------------------------- #
class TestServedParity:
    def test_single_client_roundtrip(self, tmp_path):
        times, values = make_workload(seed=21, length=2000)
        with ServerHarness(tmp_path / "store") as harness:
            with harness.connect() as client:
                client.ping()
                accepted = client.ingest("sensor", times, values)
                assert accepted == times.size
                assert client.sync("sensor") == times.size
                recordings = client.read("sensor")
                sealed = client.seal("sensor")
                assert sealed == len(client.read("sensor"))
                served = client.read("sensor")
                description = client.describe("sensor")
                assert description["stream"] == "sensor"
                assert description["recordings"] > 0
                assert "sensor" in client.streams()
        expected = reference_recordings(tmp_path / "ref", times, values)
        assert_recordings_identical(served, expected)
        # the pre-seal read already covers every point (live tail included)
        assert recordings[0].time == expected[0].time

    def test_queries_match_local_session(self, tmp_path):
        times, values = make_workload(seed=22, length=2000)
        with ServerHarness(tmp_path / "store") as harness:
            with harness.connect() as client:
                client.ingest("sensor", times, values)
                client.sync("sensor")
                client.seal("sensor")
                served_agg = client.aggregate("sensor", 100.0, 1500.0)
                served_windows = client.aggregate("sensor", 0.0, 1800.0, window=300.0)
                grid, samples = client.resample("sensor", step=25.0)
                crossings = client.crossings("sensor", float(values[200]))
                cells = client.zoom("sensor", max_points=32)
        with repro.open(tmp_path / "ref", filter=FILTER) as db:
            db.append("sensor", times, values)
            db.seal("sensor")
            local_agg = db.aggregate("sensor", 100.0, 1500.0)
            local_windows = db.aggregate("sensor", 0.0, 1800.0, window=300.0)
            local_grid, local_samples = db.resample("sensor", step=25.0)
            local_crossings = db.crossings("sensor", float(values[200]))
            local_cells = db.zoom("sensor", max_points=32)
        assert served_agg == local_agg
        assert served_windows == local_windows
        np.testing.assert_array_equal(grid, local_grid)
        np.testing.assert_array_equal(samples, local_samples)
        np.testing.assert_array_equal(crossings, local_crossings)
        assert cells == local_cells

    def test_concurrent_clients_many_streams(self, tmp_path):
        clients, streams_per_client, length = 4, 2, 1200
        workloads = {}
        for c in range(clients):
            for s in range(streams_per_client):
                name = f"client{c}/stream{s}"
                workloads[name] = make_workload(seed=100 + 7 * c + s, length=length)

        errors = []

        def run_client(c):
            try:
                with repro.client.connect("127.0.0.1", port) as client:
                    for s in range(streams_per_client):
                        name = f"client{c}/stream{s}"
                        times, values = workloads[name]
                        # interleave chunks so server-side streams grow together
                        for lo in range(0, length, 300):
                            client.ingest(name, times[lo : lo + 300], values[lo : lo + 300])
                    for s in range(streams_per_client):
                        name = f"client{c}/stream{s}"
                        client.sync(name)
                        client.seal(name)
            except BaseException as error:  # noqa: BLE001 - reported by main thread
                errors.append(error)

        with ServerHarness(tmp_path / "store") as harness:
            port = harness.port
            threads = [
                threading.Thread(target=run_client, args=(c,)) for c in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            assert not errors, errors
            with harness.connect() as client:
                assert client.streams() == sorted(workloads)
                served = {name: client.read(name) for name in workloads}
        for index, (name, (times, values)) in enumerate(sorted(workloads.items())):
            expected = reference_recordings(
                tmp_path / f"ref{index}", times, values, name=name
            )
            assert_recordings_identical(served[name], expected)


# --------------------------------------------------------------------------- #
# Live tails
# --------------------------------------------------------------------------- #
class TestTail:
    def test_tail_delivers_every_recording(self, tmp_path):
        times, values = make_workload(seed=31, length=1500)
        with ServerHarness(tmp_path / "store") as harness:
            with harness.connect() as client:
                subscription = client.subscribe("sensor")
                for lo in range(0, times.size, 250):
                    client.ingest("sensor", times[lo : lo + 250], values[lo : lo + 250])
                client.sync("sensor")
                client.seal("sensor")
                events = list(subscription)
                sealed_read = client.read("sensor")
        assert events, "no tail events delivered"
        assert [event.seq for event in events] == list(range(len(events)))
        assert events[-1].sealed
        tailed = [record for event in events for record in event.recordings]
        assert_recordings_identical(tailed, sealed_read)

    def test_two_subscribers_see_identical_tails(self, tmp_path):
        times, values = make_workload(seed=32, length=800)

        async def run():
            db = repro.open(tmp_path / "store", filter=FILTER)
            async with StreamDBServer(db, port=0) as server:
                first = await AsyncStreamClient.connect("127.0.0.1", server.port)
                second = await AsyncStreamClient.connect("127.0.0.1", server.port)
                sub_a = await first.subscribe("sensor")
                sub_b = await second.subscribe("sensor")
                writer = await AsyncStreamClient.connect("127.0.0.1", server.port)
                for lo in range(0, times.size, 200):
                    await writer.ingest(
                        "sensor", times[lo : lo + 200], values[lo : lo + 200]
                    )
                await writer.sync("sensor")
                await writer.seal("sensor")
                events_a = [event async for event in sub_a]
                events_b = [event async for event in sub_b]
                await first.close()
                await second.close()
                await writer.close()
                return events_a, events_b

        events_a, events_b = asyncio.run(run())
        assert [e.seq for e in events_a] == [e.seq for e in events_b]
        flat_a = [r for e in events_a for r in e.recordings]
        flat_b = [r for e in events_b for r in e.recordings]
        assert_recordings_identical(flat_a, flat_b)

    def test_slow_subscriber_evicted_from_hub(self):
        async def run():
            hub = BroadcastHub(tail_queue=2)
            subscription = hub.subscribe("sensor")
            for _ in range(6):
                hub._publish_on_loop("sensor", ("r",), False)
            drained = []
            while True:
                event = await subscription.get()
                if event is None:
                    break
                drained.append(event)
            return subscription.close_reason, drained, hub.subscriber_count("sensor")

        reason, drained, remaining = asyncio.run(run())
        assert reason == "evicted"
        assert drained == []  # pending events are dropped on eviction
        assert remaining == 0


# --------------------------------------------------------------------------- #
# Backpressure, auth, rate limiting
# --------------------------------------------------------------------------- #
class TestFlowControl:
    def test_full_ingest_queue_throttles_then_recovers(self, tmp_path):
        times, values = make_workload(seed=41, length=1200)

        async def run():
            db = repro.open(tmp_path / "store", filter=FILTER)
            real_append = db.append

            def slow_append(stream, chunk_times, chunk_values):
                time.sleep(0.02)
                return real_append(stream, chunk_times, chunk_values)

            db.append = slow_append
            async with StreamDBServer(db, port=0, ingest_queue=2) as server:
                client = await AsyncStreamClient.connect("127.0.0.1", server.port)
                throttled = accepted = 0
                chunks = [
                    (times[lo : lo + 100], values[lo : lo + 100])
                    for lo in range(0, times.size, 100)
                ]
                sent = []
                for chunk_times, chunk_values in chunks:
                    try:
                        await client.ingest(
                            "sensor", chunk_times, chunk_values, retry=False
                        )
                        accepted += 1
                        sent.append((chunk_times, chunk_values))
                    except ServerError as error:
                        assert error.code == "throttle"
                        assert error.retry_after and error.retry_after > 0
                        throttled += 1
                # with retries the same chunk eventually gets through
                recovered_times = times + float(times[-1]) + 1.0
                await client.ingest("sensor", recovered_times[:100], values[:100])
                sent.append((recovered_times[:100], values[:100]))
                await client.sync("sensor")
                await client.seal("sensor")
                served = await client.read("sensor")
                await client.close()
                return throttled, accepted, served, sent

        throttled, accepted, served, sent = asyncio.run(run())
        assert throttled > 0, "a 2-chunk queue over a slow sink must throttle"
        assert accepted > 0
        ref_times = np.concatenate([chunk[0] for chunk in sent])
        ref_values = np.concatenate([chunk[1] for chunk in sent])
        expected = reference_recordings(
            tmp_path.parent / (tmp_path.name + "-ref"), ref_times, ref_values
        )
        assert_recordings_identical(served, expected)

    def test_auth_scopes_streams(self, tmp_path):
        times, values = make_workload(seed=42, length=300)
        tokens = {"s3cret": ["sensors/*"], "admin": ["*"]}
        with ServerHarness(tmp_path / "store", tokens=tokens) as harness:
            with harness.connect(token="s3cret") as client:
                client.ingest("sensors/a", times, values)
                client.sync("sensors/a")
                with pytest.raises(ServerError) as denied:
                    client.ingest("other/b", times, values)
                assert denied.value.code == "auth"
                # streams listing is scoped to the token's grants
                assert client.streams() == ["sensors/a"]
            with harness.connect(token="admin") as client:
                assert client.streams() == ["sensors/a"]
            with pytest.raises(ServerError) as rejected:
                with harness.connect(token="wrong") as client:
                    pass
            assert rejected.value.code == "auth"
            with harness.connect() as client:  # no token at all
                with pytest.raises(ServerError) as anonymous:
                    client.streams()
                assert anonymous.value.code == "auth"

    def test_rate_limit_enforced_with_retry_hint(self, tmp_path):
        times, values = make_workload(seed=43, length=4000)
        with ServerHarness(tmp_path / "store", rate_limit=500.0) as harness:
            with harness.connect() as client:
                client.ingest("sensor", times[:1000], values[:1000], retry=False)
                with pytest.raises(ServerError) as limited:
                    client.ingest(
                        "sensor", times[1000:2000], values[1000:2000], retry=False
                    )
                assert limited.value.code == "rate_limit"
                assert limited.value.retry_after and limited.value.retry_after > 0
                # the retrying path waits the hint out and succeeds
                client.ingest("sensor", times[1000:2000], values[1000:2000])
                client.sync("sensor")


# --------------------------------------------------------------------------- #
# Errors stay structured; the server stays up
# --------------------------------------------------------------------------- #
class TestServerErrors:
    def test_unknown_stream_and_bad_request(self, tmp_path):
        with ServerHarness(tmp_path / "store") as harness:
            with harness.connect() as client:
                with pytest.raises(ServerError) as missing:
                    client.read("nope")
                assert missing.value.code == "unknown_stream"
                with pytest.raises(ServerError) as missing_describe:
                    client.describe("nope")
                assert missing_describe.value.code == "unknown_stream"
                with pytest.raises(ServerError) as bad:
                    client._request("read")  # no stream field at all
                assert bad.value.code == "bad_request"
                with pytest.raises(ServerError) as unknown_op:
                    client._request("frobnicate")
                assert unknown_op.value.code == "bad_request"
                client.ping()  # connection survived every error

    @pytest.mark.faults
    def test_sink_failure_mid_serve_is_structured(self, tmp_path):
        """An injected storage fault fails the stream, not the server."""
        times, values = make_workload(seed=44, length=2000)
        store_dir = tmp_path / "store"

        async def run():
            db = repro.open(store_dir, filter=FILTER, archive_batch=4)
            async with StreamDBServer(db, port=0) as server:
                client = await AsyncStreamClient.connect("127.0.0.1", server.port)
                injector = faults.FaultInjector(
                    [faults.FaultRule(op="write", path=str(store_dir))]
                )
                faults.install(injector)
                try:
                    failed = None
                    for lo in range(0, times.size, 200):
                        try:
                            await client.ingest(
                                "doomed", times[lo : lo + 200], values[lo : lo + 200]
                            )
                            await client.sync("doomed")
                        except ServerError as error:
                            failed = error
                            break
                finally:
                    faults.uninstall()
                assert failed is not None, "injected write fault never surfaced"
                assert failed.code == "ingest_failed"
                # the server survives: same connection, a healthy stream works
                await client.ping()
                await client.ingest("healthy", times[:400], values[:400])
                assert await client.sync("healthy") == 400
                await client.close()

        asyncio.run(run())


# --------------------------------------------------------------------------- #
# The serve CLI shuts down gracefully on signals
# --------------------------------------------------------------------------- #
class TestServeCli:
    @pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM])
    def test_kill_is_graceful(self, tmp_path, signum):
        store = tmp_path / "store"
        checkpoint = tmp_path / "ckpt"
        env = dict(os.environ)
        env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--store",
                str(store),
                "--epsilon",
                str(EPSILON),
                "--port",
                "0",
                "--checkpoint",
                str(checkpoint),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            banner = process.stdout.readline()
            assert banner.startswith("serving "), banner
            port = int(banner.rsplit(":", 1)[1])
            times, values = make_workload(seed=51, length=600)
            with repro.client.connect("127.0.0.1", port) as client:
                client.ingest("sensor", times, values)
                client.sync("sensor")
            process.send_signal(signum)
            output, _ = process.communicate(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "shutting down (drain, flush, checkpoint)" in output
        # the shutdown checkpointed the live filter state
        assert any(checkpoint.glob("*.ckpt"))
        # and the store reopens cleanly with the drained points archived
        with repro.open(store, mode="r") as db:
            assert db.describe("sensor").recordings > 0
