"""Columnar mmap backend: layout, zero-copy reads, column projection,
maintenance (truncate/compact/recover), backend persistence + auto-detect,
atomic migration, and cross-backend parity with the block log.

The contract under test: both registered backends answer every read
bit-identically and every planner query within 1e-9, while the columnar
backend serves column-pruned slices straight out of one ``np.memmap`` per
log — no per-record decode, no row-to-column transpose — and its
maintenance operations never invalidate arrays already handed out.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.registry import create_filter
from repro.core.types import Recording, RecordingKind
from repro.queries.planner import (
    plan_range_aggregate,
    plan_resample,
    plan_window_aggregates,
)
from repro.queries.pyramid import plan_zoom
from repro.storage import (
    SegmentStore,
    ShardedStore,
    available_backends,
    get_backend,
    migrate_store,
    open_store,
)
from repro.storage.backends import ColumnarBackend
from repro.storage.backends.columnar import _HEADER, _MAGIC, _block_bytes

REL = 1e-9
ABS = 1e-9
FIELDS = ("minimum", "maximum", "mean", "integral")

BACKENDS = ("block-log", "columnar")


def make_recordings(count, dimensions=1, start_time=0.0):
    recordings = []
    for index in range(count):
        value = [float(index) * 0.5 + dim for dim in range(dimensions)]
        kind = RecordingKind.SEGMENT_START if index == 0 else RecordingKind.SEGMENT_END
        recordings.append(Recording(start_time + index, value, kind))
    return recordings


def filtered_recordings(filter_name, seed, points=1500, dimensions=1, epsilon=0.5):
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(0.2, 1.5, points))
    values = np.cumsum(rng.normal(0.0, 1.0, (points, dimensions)), axis=0)
    filt = create_filter(filter_name, epsilon)
    recordings = filt.process_batch(times, values)
    recordings += filt.finish()
    return recordings


def assert_identical(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a.time == b.time
        assert a.kind == b.kind
        assert np.array_equal(a.value, b.value)


def assert_arrays_equal(left, right):
    for a, b in zip(left, right):
        assert np.array_equal(a, b)


def assert_close(got, ref):
    for field in FIELDS:
        assert getattr(got, field) == pytest.approx(getattr(ref, field), rel=REL, abs=ABS)


def mm_base(array):
    """Walk the ``.base`` chain down to the owning ``np.memmap`` (or None)."""
    base = array
    while base is not None and not isinstance(base, np.memmap):
        base = getattr(base, "base", None)
    return base


def both_stores(tmp_path, recordings, block_records=16, name="s"):
    stores = {}
    for backend in BACKENDS:
        store = SegmentStore(tmp_path / backend, backend=backend, block_records=block_records)
        store.append(name, recordings)
        store.flush()
        stores[backend] = store
    return stores["block-log"], stores["columnar"]


class TestColumnarLayout:
    def test_registered(self):
        assert "columnar" in available_backends()
        backend = get_backend("columnar", block_records=32)
        assert isinstance(backend, ColumnarBackend)
        assert backend.block_records == 32
        assert backend.version == 1

    def test_roundtrip_matches_block_log(self, tmp_path):
        recordings = make_recordings(100, dimensions=3)
        row, col = both_stores(tmp_path, recordings)
        assert_identical(col.read("s"), recordings)
        assert_identical(col.read("s"), row.read("s"))
        assert_arrays_equal(col.read_arrays("s"), row.read_arrays("s"))

    def test_blocks_are_immutable_and_bounded(self, tmp_path):
        """Columnar appends never top up the trailing block: every append
        seals immutable blocks, so a crash can only tear the newest one."""
        store = SegmentStore(tmp_path / "c", backend="columnar", block_records=16)
        store.append("s", make_recordings(20))
        store.append("s", make_recordings(10, start_time=20.0))
        blocks = store.describe("s").blocks
        assert [block[1] for block in blocks] == [16, 4, 10]
        # Blocks tile the file contiguously, header-aligned.
        offset = 0
        for block in blocks:
            assert block[0] == offset
            offset += _block_bytes(block[1], 1)
        assert store._log_path("s").stat().st_size == offset

    def test_block_headers_are_self_describing(self, tmp_path):
        store = SegmentStore(tmp_path / "c", backend="columnar", block_records=8)
        store.append("s", make_recordings(20, dimensions=2))
        raw = store._log_path("s").read_bytes()
        for block in store.describe("s").blocks:
            magic, count, dimensions, min_time, max_time = _HEADER.unpack_from(raw, block[0])
            assert magic == _MAGIC
            assert count == block[1]
            assert dimensions == 2
            assert min_time == block[2] and max_time == block[3]

    def test_catalog_entries_match_block_log_modulo_offsets(self, tmp_path):
        """One aligned batch: same partitioning, times and summaries as the
        row backend — only the byte offsets differ."""
        recordings = make_recordings(64, dimensions=2)
        row, col = both_stores(tmp_path, recordings, block_records=16)
        row_blocks = row.describe("s").blocks
        col_blocks = col.describe("s").blocks
        assert len(row_blocks) == len(col_blocks)
        for rb, cb in zip(row_blocks, col_blocks):
            assert rb[1:4] == cb[1:4]
            assert json.dumps(rb[4], sort_keys=True) == json.dumps(cb[4], sort_keys=True)

    def test_range_reads_match_block_log(self, tmp_path):
        recordings = make_recordings(200, dimensions=2)
        row, col = both_stores(tmp_path, recordings, block_records=8)
        rng = np.random.default_rng(3)
        for _ in range(40):
            start, end = np.sort(rng.uniform(-10.0, 210.0, 2))
            assert_identical(col.read("s", start, end), row.read("s", start, end))
            assert_arrays_equal(
                col.read_arrays("s", start, end), row.read_arrays("s", start, end)
            )

    def test_empty_stream_reads(self, tmp_path):
        store = SegmentStore(tmp_path / "c", backend="columnar")
        store.ensure_stream("s", 3)
        kinds, times, values = store.read_arrays("s")
        assert kinds.shape == (0,) and times.shape == (0,) and values.shape == (0, 3)
        kinds, times, values = store.read_arrays("s", dims=(1,))
        assert values.shape == (0, 1)


class TestColumnProjection:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dims_select_columns_in_order(self, tmp_path, backend):
        store = SegmentStore(tmp_path / backend, backend=backend, block_records=8)
        recordings = make_recordings(50, dimensions=4)
        store.append("s", recordings)
        full = store.read_arrays("s")[2]
        for dims, expected in ((1, [1]), ((2, 0), [2, 0]), ((3,), [3])):
            kinds, times, values = store.read_arrays("s", dims=dims)
            assert np.array_equal(values, full[:, expected])
        # Empty selection: kinds/times-only read.
        kinds, times, values = store.read_arrays("s", dims=())
        assert values.shape == (50, 0)
        assert times.shape == (50,)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_dims_out_of_range(self, tmp_path, backend):
        store = SegmentStore(tmp_path / backend, backend=backend)
        store.append("s", make_recordings(10, dimensions=2))
        with pytest.raises(ValueError):
            store.read_arrays("s", dims=2)
        with pytest.raises(ValueError):
            store.read_arrays("s", dims=(0, -3))

    def test_projected_reads_match_across_backends(self, tmp_path):
        recordings = make_recordings(120, dimensions=3)
        row, col = both_stores(tmp_path, recordings, block_records=8)
        rng = np.random.default_rng(9)
        for _ in range(20):
            start, end = np.sort(rng.uniform(-5.0, 125.0, 2))
            for dims in (0, (2,), (1, 0), ()):
                assert_arrays_equal(
                    col.read_arrays("s", start, end, dims=dims),
                    row.read_arrays("s", start, end, dims=dims),
                )

    def test_read_block_arrays_dims(self, tmp_path):
        recordings = make_recordings(64, dimensions=3)
        row, col = both_stores(tmp_path, recordings, block_records=16)
        for lo, hi in ((0, 1), (1, 3), (0, 4)):
            assert_arrays_equal(
                col.read_block_arrays("s", lo, hi, dims=(2,)),
                row.read_block_arrays("s", lo, hi, dims=(2,)),
            )


class TestZeroCopy:
    def test_single_block_reads_are_memmap_views(self, tmp_path):
        store = SegmentStore(tmp_path / "c", backend="columnar", block_records=4096)
        store.append("s", make_recordings(500, dimensions=2))
        kinds, times, values = store.read_arrays("s", dims=(1,))
        for array in (kinds, times, values):
            assert mm_base(array) is not None, type(array)

    def test_multi_block_single_column_no_row_decode(self, tmp_path):
        """Projection never materializes untouched columns: reading one of
        eight columns moves ~17 bytes per record, not the full row."""
        store = SegmentStore(tmp_path / "c", backend="columnar", block_records=16)
        store.append("s", make_recordings(200, dimensions=8))
        kinds, times, values = store.read_arrays("s", dims=(5,))
        assert values.shape == (200, 1)
        assert values.base is not None  # reshape of the gathered 1-d column
        assert np.array_equal(values[:, 0], store.read_arrays("s")[2][:, 5])


class TestMutationSafety:
    def test_compact_does_not_invalidate_live_views(self, tmp_path):
        """Satellite regression: arrays returned before ``compact`` must stay
        readable and bit-identical afterwards (the rewrite lands on a new
        inode via ``os.replace``; live views keep the old one mapped)."""
        store = SegmentStore(tmp_path / "c", backend="columnar", block_records=16)
        for lo in range(0, 90, 9):  # ragged batches -> undersized blocks
            store.append("s", make_recordings(9, start_time=float(lo)))
        live = store.read_block_arrays("s", 1, 2)  # single block: pure views
        assert mm_base(live[1]) is not None
        snapshot = tuple(np.array(part, copy=True) for part in live)
        assert store.compact("s")["s"][1] < 10
        assert_arrays_equal(live, snapshot)
        # Fresh reads go through the new inode and still match the data.
        assert len(store.read("s")) == 90

    def test_truncate_does_not_invalidate_live_views(self, tmp_path):
        store = SegmentStore(tmp_path / "c", backend="columnar", block_records=16)
        store.append("s", make_recordings(64))
        live = store.read_block_arrays("s", 2, 3)
        snapshot = tuple(np.array(part, copy=True) for part in live)
        store.truncate_stream("s", 20)  # cuts away the block `live` views
        assert_arrays_equal(live, snapshot)
        assert store.describe("s").recordings == 20


class TestColumnarMaintenance:
    def test_truncate_matches_block_log(self, tmp_path):
        recordings = make_recordings(50, dimensions=2)
        row, col = both_stores(tmp_path, recordings, block_records=8)
        for keep in (20, 17, 8, 0):
            row_entry = row.truncate_stream("s", keep)
            col_entry = col.truncate_stream("s", keep)
            assert row_entry.recordings == col_entry.recordings == keep
            assert_identical(col.read("s"), row.read("s"))
            for rb, cb in zip(row_entry.blocks, col_entry.blocks):
                assert rb[1:4] == cb[1:4]

    def test_appends_continue_after_truncate(self, tmp_path):
        store = SegmentStore(tmp_path / "c", backend="columnar", block_records=8)
        store.append("s", make_recordings(30))
        store.truncate_stream("s", 12)
        store.append("s", make_recordings(10, start_time=12.0))
        assert [r.time for r in store.read("s")] == [float(t) for t in range(22)]

    def test_compact_merges_and_is_idempotent(self, tmp_path):
        small = SegmentStore(tmp_path / "c", backend="columnar", block_records=8)
        small.append("s", make_recordings(100, dimensions=2))
        small.close()
        store = SegmentStore(tmp_path / "c")  # backend auto-detected
        before = store.read("s")
        rebuilt = store.compact("s")
        assert rebuilt["s"][0] > rebuilt["s"][1] == 1
        assert_identical(store.read("s"), before)
        assert store.compact("s") == {}

    def test_compact_of_packed_log_does_not_rewrite(self, tmp_path):
        store = SegmentStore(tmp_path / "c", backend="columnar", block_records=16)
        store.append("s", make_recordings(64))
        log_path = store._log_path("s")
        stat_before = log_path.stat()
        assert store.compact("s") == {}
        assert log_path.stat().st_ino == stat_before.st_ino

    def test_reopen_recovers_unflushed_appends(self, tmp_path):
        store = SegmentStore(
            tmp_path / "c", backend="columnar", autoflush=False, block_records=8
        )
        recordings = make_recordings(30, dimensions=2)
        store.append("s", recordings)
        # No flush: the on-disk catalog still says 0 recordings.
        reopened = SegmentStore(tmp_path / "c", block_records=8)
        entry = reopened.describe("s")
        assert entry.recordings == 30
        assert_identical(reopened.read("s"), recordings)
        assert all(block[4] is not None for block in entry.blocks)

    def test_crash_truncated_log_drops_torn_block_whole(self, tmp_path):
        store = SegmentStore(tmp_path / "c", backend="columnar", block_records=8)
        store.append("s", make_recordings(30))
        log_path = store._log_path("s")
        with open(log_path, "rb+") as log:
            log.truncate(log_path.stat().st_size - 13)  # tear the last block
        reopened = SegmentStore(tmp_path / "c", block_records=8)
        entry = reopened.describe("s")
        # Recovery is block-granular: the torn 30-record tail block (6
        # records) is dropped whole, and its torn bytes leave the log.
        assert entry.recordings == 24
        assert log_path.stat().st_size == sum(
            _block_bytes(block[1], 1) for block in entry.blocks
        )
        assert [r.time for r in reopened.read("s")] == [float(t) for t in range(24)]
        reopened.append("s", make_recordings(6, start_time=24.0))
        assert [r.time for r in reopened.read("s")] == [float(t) for t in range(30)]

    def test_recovery_stops_at_corrupt_header(self, tmp_path):
        store = SegmentStore(
            tmp_path / "c", backend="columnar", autoflush=False, block_records=8
        )
        store.append("s", make_recordings(24))
        blocks = store.describe("s").blocks
        with open(store._log_path("s"), "rb+") as log:
            log.seek(blocks[1][0])
            log.write(b"XXXX")  # clobber the second block's magic
        reopened = SegmentStore(tmp_path / "c", block_records=8)
        assert reopened.describe("s").recordings == 8


class TestBackendPersistence:
    def test_catalog_records_backend(self, tmp_path):
        store = SegmentStore(tmp_path / "c", backend="columnar")
        store.append("s", make_recordings(5))
        store.flush()
        payload = json.loads((tmp_path / "c" / "catalog.json").read_text())
        assert payload["backend"] == "columnar"
        assert payload["backend_version"] == 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_reopen_auto_detects(self, tmp_path, backend):
        store = SegmentStore(tmp_path / "c", backend=backend)
        store.append("s", make_recordings(10))
        store.close()
        reopened = SegmentStore(tmp_path / "c")
        assert reopened.backend.name == backend
        assert len(reopened.read("s")) == 10

    def test_explicit_mismatch_is_rejected(self, tmp_path):
        store = SegmentStore(tmp_path / "c", backend="columnar")
        store.append("s", make_recordings(5))
        store.close()
        with pytest.raises(ValueError, match="migrate"):
            SegmentStore(tmp_path / "c", backend="block-log")

    def test_backend_instance_mismatch_is_rejected(self, tmp_path):
        store = SegmentStore(tmp_path / "c", backend="block-log")
        store.append("s", make_recordings(5))
        store.close()
        with pytest.raises(ValueError, match="migrate"):
            SegmentStore(tmp_path / "c", backend=ColumnarBackend())

    def test_legacy_catalog_defaults_to_block_log(self, tmp_path):
        store = SegmentStore(tmp_path / "c")
        store.append("s", make_recordings(5))
        store.close()
        catalog_path = tmp_path / "c" / "catalog.json"
        payload = json.loads(catalog_path.read_text())
        del payload["backend"]
        del payload["backend_version"]
        catalog_path.write_text(json.dumps(payload))
        reopened = SegmentStore(tmp_path / "c")
        assert reopened.backend.name == "block-log"
        assert len(reopened.read("s")) == 5

    def test_future_backend_version_is_rejected(self, tmp_path):
        store = SegmentStore(tmp_path / "c", backend="columnar")
        store.append("s", make_recordings(5))
        store.close()
        catalog_path = tmp_path / "c" / "catalog.json"
        payload = json.loads(catalog_path.read_text())
        payload["backend_version"] = 99
        catalog_path.write_text(json.dumps(payload))
        with pytest.raises(ValueError, match="version"):
            SegmentStore(tmp_path / "c")

    def test_sharded_meta_records_backend(self, tmp_path):
        store = ShardedStore(tmp_path / "c", 3, backend="columnar")
        store.append("s", make_recordings(10))
        store.close()
        meta = json.loads((tmp_path / "c" / "shards.json").read_text())
        assert meta["backend"] == "columnar"
        reopened = ShardedStore(tmp_path / "c")
        assert reopened.shards[0].backend.name == "columnar"
        assert len(reopened.read("s")) == 10
        with pytest.raises(ValueError, match="migrate"):
            ShardedStore(tmp_path / "c", backend="block-log")

    def test_open_store_auto_detects_both_shapes(self, tmp_path):
        plain = SegmentStore(tmp_path / "plain", backend="columnar")
        plain.append("s", make_recordings(5))
        plain.close()
        sharded = ShardedStore(tmp_path / "sharded", 2, backend="columnar")
        sharded.append("s", make_recordings(5))
        sharded.close()
        assert open_store(tmp_path / "plain").backend.name == "columnar"
        assert open_store(tmp_path / "sharded").shards[0].backend.name == "columnar"


class TestEnsureStream:
    def test_idempotent_and_validates_dimensions(self, tmp_path):
        store = SegmentStore(tmp_path / "c", backend="columnar")
        entry = store.ensure_stream("s", 2, epsilon=[0.5, 0.5])
        assert store.ensure_stream("s", 2) is entry
        with pytest.raises(ValueError):
            store.ensure_stream("s", 3)
        store.append("s", make_recordings(4, dimensions=2))
        assert store.describe("s").recordings == 4

    def test_sharded_delegates(self, tmp_path):
        store = ShardedStore(tmp_path / "c", 2)
        store.ensure_stream("a", 1)
        assert "a" in store.stream_names()


class TestMigration:
    @pytest.mark.parametrize("to", ["columnar", "block-log"])
    def test_plain_roundtrip(self, tmp_path, to):
        source_backend = "block-log" if to == "columnar" else "columnar"
        store = SegmentStore(tmp_path / "store", backend=source_backend, block_records=8)
        streams = {
            "a": make_recordings(50, dimensions=2),
            "b/c": make_recordings(23),
        }
        for name, recordings in streams.items():
            store.append(name, recordings, epsilon=[0.5] * recordings[0].dimensions)
        store.ensure_stream("empty", 3)
        store.close()

        report = migrate_store(tmp_path / "store", to)
        assert report.changed and report.source == source_backend and report.target == to
        assert report.streams == 3 and report.recordings == 73
        assert sorted(report.verified) == ["a", "b/c", "empty"]
        reopened = open_store(tmp_path / "store")
        assert reopened.backend.name == to
        for name, recordings in streams.items():
            assert_identical(reopened.read(name), recordings)
        assert reopened.describe("a").epsilon == [0.5, 0.5]
        assert reopened.describe("empty").dimensions == 3
        # No staging or backup directories left behind.
        assert not (tmp_path / "store.migrate-tmp").exists()
        assert not (tmp_path / "store.migrate-old").exists()

    def test_sharded_roundtrip_preserves_shard_count(self, tmp_path):
        store = ShardedStore(tmp_path / "store", 4, block_records=8)
        for index in range(6):
            store.append(f"s{index}", make_recordings(20 + index))
        store.close()
        report = migrate_store(tmp_path / "store", "columnar")
        assert report.streams == 6
        reopened = open_store(tmp_path / "store")
        assert reopened.shard_count == 4
        assert reopened.shards[0].backend.name == "columnar"
        for index in range(6):
            assert len(reopened.read(f"s{index}")) == 20 + index

    def test_noop_when_already_target(self, tmp_path):
        store = SegmentStore(tmp_path / "store", backend="columnar")
        store.append("s", make_recordings(5))
        store.close()
        before = (tmp_path / "store" / "catalog.json").read_text()
        report = migrate_store(tmp_path / "store", "columnar")
        assert not report.changed
        assert (tmp_path / "store" / "catalog.json").read_text() == before

    def test_unknown_target_and_missing_store(self, tmp_path):
        with pytest.raises(KeyError):
            migrate_store(tmp_path / "nowhere", "no-such-backend")
        with pytest.raises(FileNotFoundError):
            migrate_store(tmp_path / "nowhere", "columnar")

    def test_failed_verification_leaves_original_intact(self, tmp_path, monkeypatch):
        store = SegmentStore(tmp_path / "store", backend="block-log")
        store.append("s", make_recordings(10))
        store.close()

        # A lossy copy: the block reads feeding the rewrite drop the last
        # record, while the full reads used by verification stay truthful.
        real_read = SegmentStore.read_block_arrays

        def lossy_read(self, name, lo, hi, dims=None):
            kinds, times, values = real_read(self, name, lo, hi, dims=dims)
            return kinds[:-1], times[:-1], values[:-1]

        monkeypatch.setattr(SegmentStore, "read_block_arrays", lossy_read)
        with pytest.raises(RuntimeError, match="verification"):
            migrate_store(tmp_path / "store", "columnar")
        reopened = open_store(tmp_path / "store")
        assert reopened.backend.name == "block-log"
        assert len(reopened.read("s")) == 10
        assert not (tmp_path / "store.migrate-tmp").exists()


class TestCrossBackendParity:
    """Fuzz: filters x shard counts x dimensionality x live tails — both
    backends must read bit-identically and answer planner queries within
    the planner tolerance."""

    @pytest.mark.parametrize("filter_name", ["slide", "swing"])
    @pytest.mark.parametrize("shards", [None, 4])
    @pytest.mark.parametrize("dimensions", [1, 3])
    def test_reads_and_aggregates(self, tmp_path, filter_name, shards, dimensions):
        recordings = filtered_recordings(filter_name, seed=29, dimensions=dimensions)
        stores = {}
        for backend in BACKENDS:
            directory = tmp_path / f"{backend}-{shards}"
            if shards is None:
                store = SegmentStore(directory, backend=backend, block_records=8)
            else:
                store = ShardedStore(directory, shards, backend=backend, block_records=8)
            store.append("s", recordings)
            store.flush()
            stores[backend] = store
        row, col = stores["block-log"], stores["columnar"]
        assert_identical(col.read("s"), row.read("s"))

        entry = col.describe("s")
        lo, hi = entry.first_time, entry.last_time
        rng = np.random.default_rng(31)
        for _ in range(15):
            a = rng.uniform(lo - 10.0, hi)
            b = a + rng.uniform(0.5, (hi - lo) / 2)
            assert_identical(col.read("s", a, b), row.read("s", a, b))
            for dimension in range(dimensions):
                assert_close(
                    plan_range_aggregate(col, "s", a, b, dimension, min_blocks=0),
                    plan_range_aggregate(row, "s", a, b, dimension, min_blocks=0),
                )
        window = (hi - lo) / 13.0
        got = plan_window_aggregates(col, "s", window, min_blocks=0)
        ref = plan_window_aggregates(row, "s", window, min_blocks=0)
        assert len(got) == len(ref)
        for g, r in zip(got, ref):
            assert g.start == r.start and g.end == r.end
            assert_close(g, r)
        got_grid = plan_resample(col, "s", (hi - lo) / 97.0)
        ref_grid = plan_resample(row, "s", (hi - lo) / 97.0)
        np.testing.assert_array_equal(got_grid[0], ref_grid[0])
        np.testing.assert_allclose(got_grid[1], ref_grid[1], rtol=REL, atol=ABS)

    def test_zoom_parity(self, tmp_path):
        recordings = filtered_recordings("slide", seed=37)
        row, col = both_stores(tmp_path, recordings, block_records=8)
        entry = col.describe("s")
        lo, hi = entry.first_time, entry.last_time
        for a, b in ((lo, hi), (lo + (hi - lo) / 3, hi - (hi - lo) / 5)):
            got = plan_zoom(col, "s", a, b, max_points=64)
            ref = plan_zoom(row, "s", a, b, max_points=64)
            assert len(got) == len(ref)
            for g, r in zip(got, ref):
                assert g.start == pytest.approx(r.start, rel=REL, abs=ABS)
                assert g.end == pytest.approx(r.end, rel=REL, abs=ABS)
                for field in ("minimum", "maximum", "mean"):
                    assert getattr(g, field) == pytest.approx(
                        getattr(r, field), rel=REL, abs=ABS
                    )

    def test_live_tail_parity(self, tmp_path):
        recordings = filtered_recordings("slide", seed=41, dimensions=2)
        split = len(recordings) - 9
        stored, tail = recordings[:split], recordings[split:]
        row, col = both_stores(tmp_path, stored, block_records=8)
        full = SegmentStore(tmp_path / "full", block_records=8)
        full.append("s", recordings)
        entry = full.describe("s")
        lo, hi = entry.first_time, entry.last_time
        a, b = lo + 2.0, hi - 0.5
        for dimension in (0, 1):
            ref = plan_range_aggregate(full, "s", a, b, dimension, min_blocks=0)
            for store in (row, col):
                assert_close(
                    plan_range_aggregate(
                        store, "s", a, b, dimension, tail=tail, min_blocks=0
                    ),
                    ref,
                )

    def test_planner_never_falls_back_on_columnar(self, tmp_path, monkeypatch):
        """The no-fallback guard: interior queries over a columnar store are
        answered entirely from summaries + pruned decodes."""
        recordings = filtered_recordings("slide", seed=43, dimensions=2)
        store = SegmentStore(tmp_path / "c", backend="columnar", block_records=8)
        store.append("s", recordings)
        entry = store.describe("s")
        assert len(entry.blocks) >= 4

        import repro.queries.planner as planner_module

        def forbid(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("planner fell back to the decode path")

        monkeypatch.setattr(planner_module, "_reference_recordings", forbid)
        lo, hi = entry.first_time, entry.last_time
        rng = np.random.default_rng(47)
        for _ in range(20):
            a = rng.uniform(lo, hi - 1.0)
            b = a + rng.uniform(0.5, (hi - lo) / 3)
            plan_range_aggregate(store, "s", a, b, dimension=1, min_blocks=0)
        plan_window_aggregates(store, "s", (hi - lo) / 9.0, min_blocks=0)

    def test_parity_survives_recovery(self, tmp_path):
        """Both backends recover unflushed appends to the same records."""
        recordings = filtered_recordings("swing", seed=53)
        for backend in BACKENDS:
            store = SegmentStore(
                tmp_path / backend, backend=backend, autoflush=False, block_records=8
            )
            store.append("s", recordings)
            # no flush
        row = SegmentStore(tmp_path / "block-log", block_records=8)
        col = SegmentStore(tmp_path / "columnar", block_records=8)
        assert row.backend.name == "block-log" and col.backend.name == "columnar"
        assert_identical(col.read("s"), row.read("s"))
        assert_close(
            plan_range_aggregate(col, "s", min_blocks=0),
            plan_range_aggregate(row, "s", min_blocks=0),
        )
