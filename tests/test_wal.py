"""Unit tests for the write-ahead catalog journal (repro.storage.wal)."""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.core.types import Recording, RecordingKind
from repro.storage import SegmentStore
from repro.storage.wal import (
    JOURNAL_NAME,
    CatalogJournal,
    encode_record,
    scan_journal,
)


def recordings(n, start=0.0):
    return [
        Recording(start + i, np.array([float(i) * 0.5]), RecordingKind.SEGMENT_START)
        for i in range(n)
    ]


class TestFraming:
    def test_round_trip(self, tmp_path):
        journal = CatalogJournal(tmp_path)
        journal.append(1, {"op": "upsert", "stream": "a", "entry": {"x": 1}})
        journal.append(2, {"op": "delete", "stream": "a"})
        journal.close()
        records, consistent_end, total = scan_journal(tmp_path / JOURNAL_NAME)
        assert consistent_end == total
        assert records == [
            (1, {"op": "upsert", "stream": "a", "entry": {"x": 1}}),
            (2, {"op": "delete", "stream": "a"}),
        ]

    def test_torn_tail_is_discarded(self, tmp_path):
        journal = CatalogJournal(tmp_path)
        journal.append(1, {"op": "delete", "stream": "a"})
        journal.append(2, {"op": "delete", "stream": "b"})
        journal.close()
        path = tmp_path / JOURNAL_NAME
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # tear the second record's payload
        records, consistent_end, total = scan_journal(path)
        assert [gen for gen, _ in records] == [1]
        assert consistent_end < total

    def test_corrupt_crc_stops_replay(self, tmp_path):
        journal = CatalogJournal(tmp_path)
        journal.append(1, {"op": "delete", "stream": "a"})
        journal.append(2, {"op": "delete", "stream": "b"})
        journal.append(3, {"op": "delete", "stream": "c"})
        journal.close()
        path = tmp_path / JOURNAL_NAME
        data = bytearray(path.read_bytes())
        first = len(encode_record(1, {"op": "delete", "stream": "a"}))
        data[first + 20] ^= 0xFF  # flip a byte inside record 2
        path.write_bytes(bytes(data))
        records, consistent_end, total = scan_journal(path)
        assert [gen for gen, _ in records] == [1]
        assert consistent_end == first
        assert total == len(data)

    def test_non_increasing_generation_stops_replay(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_bytes(
            encode_record(5, {"op": "delete", "stream": "a"})
            + encode_record(5, {"op": "delete", "stream": "b"})
            + encode_record(6, {"op": "delete", "stream": "c"})
        )
        records, _, _ = scan_journal(path)
        assert [gen for gen, _ in records] == [5]

    def test_missing_file_scans_empty(self, tmp_path):
        assert scan_journal(tmp_path / JOURNAL_NAME) == ([], 0, 0)

    def test_garbage_header_yields_nothing(self, tmp_path):
        path = tmp_path / JOURNAL_NAME
        path.write_bytes(b"\xde\xad\xbe\xef" * 8)
        records, consistent_end, total = scan_journal(path)
        assert records == [] and consistent_end == 0 and total == 32


class TestJournalLifecycle:
    def test_replay_repairs_torn_suffix_in_writer_mode(self, tmp_path):
        journal = CatalogJournal(tmp_path)
        journal.append(1, {"op": "delete", "stream": "a"})
        journal.close()
        path = tmp_path / JOURNAL_NAME
        good = path.stat().st_size
        with open(path, "ab") as handle:
            handle.write(struct.pack("<IIQ", 4096, 0, 2))  # torn header
        assert journal.replay(0) == [(1, {"op": "delete", "stream": "a"})]
        assert path.stat().st_size == good

    def test_read_only_replay_leaves_tear_in_place(self, tmp_path):
        journal = CatalogJournal(tmp_path)
        journal.append(1, {"op": "delete", "stream": "a"})
        journal.close()
        path = tmp_path / JOURNAL_NAME
        with open(path, "ab") as handle:
            handle.write(b"\x01\x02\x03")
        torn_size = path.stat().st_size
        reader = CatalogJournal(tmp_path, read_only=True)
        assert reader.replay(0) == [(1, {"op": "delete", "stream": "a"})]
        assert path.stat().st_size == torn_size
        with pytest.raises(PermissionError):
            reader.append(2, {"op": "delete", "stream": "b"})

    def test_replay_skips_generations_at_or_below_floor(self, tmp_path):
        journal = CatalogJournal(tmp_path)
        for generation in (1, 2, 3):
            journal.append(generation, {"op": "delete", "stream": str(generation)})
        journal.close()
        assert [gen for gen, _ in journal.replay(2)] == [3]

    def test_reset_gives_fresh_empty_journal(self, tmp_path):
        journal = CatalogJournal(tmp_path)
        journal.append(1, {"op": "delete", "stream": "a"})
        assert journal.size() > 0
        journal.reset()
        assert journal.size() == 0
        journal.append(2, {"op": "delete", "stream": "b"})
        assert [gen for gen, _ in journal.replay(0)] == [2]
        journal.close()


class TestStoreJournalIntegration:
    def test_deferred_mutations_are_journaled_immediately(self, tmp_path):
        store = SegmentStore(tmp_path, autoflush=False)
        store.append("s", recordings(10))
        # The checkpoint has not been written, but the journal already
        # carries the mutation.
        records, _, _ = scan_journal(tmp_path / JOURNAL_NAME)
        assert records and records[-1][1]["op"] == "upsert"
        assert records[-1][1]["entry"]["recordings"] == 10
        store.close()

    def test_reopen_replays_unflushed_appends(self, tmp_path):
        store = SegmentStore(tmp_path, autoflush=False)
        store.append("s", recordings(10))
        generation = store.generation
        store._journal.close()  # simulate a crash: no flush/close
        del store
        reopened = SegmentStore(tmp_path, autoflush=False)
        assert reopened.describe("s").recordings == 10
        assert reopened.generation >= generation
        reopened.close()

    def test_checkpoint_rotates_journal(self, tmp_path):
        store = SegmentStore(tmp_path, autoflush=False)
        store.append("s", recordings(10))
        assert (tmp_path / JOURNAL_NAME).stat().st_size > 0
        store.flush()
        assert (tmp_path / JOURNAL_NAME).stat().st_size == 0
        payload = json.loads((tmp_path / "catalog.json").read_text())
        assert payload["generation"] == store.generation
        store.close()

    def test_journal_limit_triggers_auto_checkpoint(self, tmp_path):
        store = SegmentStore(tmp_path, autoflush=False, journal_limit=1)
        store.append("s", recordings(10))
        # Every mutation exceeds the 1-byte limit, so the store checkpointed.
        assert (tmp_path / JOURNAL_NAME).stat().st_size == 0
        payload = json.loads((tmp_path / "catalog.json").read_text())
        assert payload["streams"][0]["recordings"] == 10
        store.close()

    def test_delete_is_journaled(self, tmp_path):
        store = SegmentStore(tmp_path, autoflush=False)
        store.append("s", recordings(10))
        store.append("t", recordings(10))
        store.flush()
        store.delete("s")
        store._journal.close()  # crash before the next checkpoint
        del store
        reopened = SegmentStore(tmp_path, autoflush=False)
        assert reopened.stream_names() == ["t"]
        reopened.close()

    def test_generation_strictly_increases_per_mutation(self, tmp_path):
        store = SegmentStore(tmp_path, autoflush=False)
        seen = [store.generation]
        store.append("s", recordings(10))
        seen.append(store.generation)
        store.append("s", recordings(10, start=100.0))
        seen.append(store.generation)
        store.delete("s")
        seen.append(store.generation)
        assert seen == sorted(set(seen))
        store.close()

    def test_stale_journal_from_before_checkpoint_is_ignored(self, tmp_path):
        store = SegmentStore(tmp_path, autoflush=False)
        store.append("s", recordings(10))
        store.flush()  # checkpoint at generation G, journal rotated
        # Forge a stale journal whose generations are <= the checkpoint's:
        # replay must skip it entirely (recycled-file scenario).
        journal = CatalogJournal(tmp_path)
        journal.append(1, {"op": "delete", "stream": "s"})
        journal.close()
        store.close()
        reopened = SegmentStore(tmp_path)
        assert reopened.describe("s").recordings == 10
        reopened.close()
