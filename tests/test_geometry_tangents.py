"""Unit tests for :mod:`repro.geometry.tangents`."""

import numpy as np
import pytest

from repro.geometry.lines import Line
from repro.geometry.tangents import (
    candidate_lower_lines,
    candidate_upper_lines,
    max_slope_lower_line,
    min_slope_upper_line,
)


class TestCandidates:
    def test_upper_candidates_pass_through_shifted_points(self):
        support = [(0.0, 1.0), (1.0, 2.0)]
        lines = candidate_upper_lines(support, 3.0, 4.0, epsilon=0.5)
        assert len(lines) == 2
        for (t, x), line in zip(support, lines):
            assert line.value_at(t) == pytest.approx(x - 0.5)
            assert line.value_at(3.0) == pytest.approx(4.5)

    def test_lower_candidates_pass_through_shifted_points(self):
        support = [(0.0, 1.0), (1.0, 2.0)]
        lines = candidate_lower_lines(support, 3.0, 4.0, epsilon=0.5)
        for (t, x), line in zip(support, lines):
            assert line.value_at(t) == pytest.approx(x + 0.5)
            assert line.value_at(3.0) == pytest.approx(3.5)

    def test_candidates_skip_points_at_or_after_new_time(self):
        support = [(0.0, 1.0), (3.0, 2.0), (4.0, 2.0)]
        lines = candidate_upper_lines(support, 3.0, 4.0, epsilon=0.5)
        assert len(lines) == 1


class TestExtremalLines:
    def test_min_slope_upper_line_selects_minimum(self):
        support = [(0.0, 0.0), (1.0, 5.0)]
        # Candidate from (1, 5): slope = (4+0.5 - 4.5)/(2-1) = 0; from (0, 0):
        # slope = (4.5 - (-0.5))/2 = 2.5 -> the minimum is the first.
        line = min_slope_upper_line(support, 2.0, 4.0, epsilon=0.5)
        assert line.slope == pytest.approx(0.0)

    def test_max_slope_lower_line_selects_maximum(self):
        support = [(0.0, 0.0), (1.0, -5.0)]
        line = max_slope_lower_line(support, 2.0, 4.0, epsilon=0.5)
        # From (1,-5): slope = (3.5 - (-4.5)) / 1 = 8; from (0,0): (3.5-0.5)/2 = 1.5.
        assert line.slope == pytest.approx(8.0)

    def test_current_line_competes(self):
        support = [(0.0, 0.0)]
        current = Line(-10.0, 0.0)
        line = min_slope_upper_line(support, 2.0, 4.0, epsilon=0.5, current=current)
        assert line is current

    def test_no_support_raises(self):
        with pytest.raises(ValueError):
            min_slope_upper_line([], 2.0, 4.0, epsilon=0.5)
        with pytest.raises(ValueError):
            max_slope_lower_line([], 2.0, 4.0, epsilon=0.5)

    def test_extremal_lines_bound_all_points(self):
        """The chosen bounds must stay within epsilon of every support point."""
        rng = np.random.default_rng(0)
        times = np.arange(20.0)
        values = np.cumsum(rng.normal(0, 0.2, 20))
        epsilon = 1.0
        support = list(zip(times[:-1], values[:-1]))
        t_new, x_new = float(times[-1]), float(values[-1])
        upper = min_slope_upper_line(support, t_new, x_new, epsilon)
        lower = max_slope_lower_line(support, t_new, x_new, epsilon)
        for t, x in support + [(t_new, x_new)]:
            assert upper.value_at(t) >= x - epsilon - 1e-9
            assert lower.value_at(t) <= x + epsilon + 1e-9

    def test_upper_above_lower_beyond_data(self):
        rng = np.random.default_rng(1)
        times = np.arange(30.0)
        values = np.cumsum(rng.normal(0, 0.3, 30))
        epsilon = 0.8
        support = list(zip(times[:-1], values[:-1]))
        t_new, x_new = float(times[-1]), float(values[-1])
        upper = min_slope_upper_line(support, t_new, x_new, epsilon)
        lower = max_slope_lower_line(support, t_new, x_new, epsilon)
        for t in np.linspace(t_new, t_new + 50.0, 10):
            assert upper.value_at(t) >= lower.value_at(t) - 1e-9
