"""Storage engine benchmark: block-indexed range reads vs seed decode.

Builds a many-stream store (100 streams x 50k recordings by default), then
answers random time-range reads two ways:

* **seed** — the seed implementation's read path, re-implemented here
  verbatim: decode the *entire* log with a per-record ``struct.unpack`` loop,
  then scan linearly for the requested range;
* **engine** — ``SegmentStore.read``: binary-search the per-block time index
  to the overlapping blocks, decode only those bytes with ``np.frombuffer``.

Both paths return bit-identical recordings (checked on a sample, including
across shard counts 1 and 4); the headline number is the range-read speedup,
asserted to be at least 5x unless ``--no-assert`` is given.  The benchmark
also times small appends with write-through vs batched catalog persistence
to show appends are no longer O(catalog) per call.

A second section compares the two storage backends on a multi-dimensional
workload stored twice — once per backend, identical data: wide
column-projected range reads (``dims=(0,)``) and single-column scan
aggregates (min / max / trapezoid integral computed straight from the
projected arrays).  The columnar mmap backend answers both from zero-copy
per-column views while the row backend must decode whole records, so the
columnar side is asserted to be at least ``--read-floor`` (3x) faster on
reads and ``--agg-floor`` (2x) faster on scan aggregates; both backends
are checked to return bit-identical arrays and recordings, and planner
aggregates within 1e-9.  Planner window sweeps are also timed, but only
reported: their cost is dominated by backend-independent piece clipping,
so storage pruning alone cannot move them past a meaningful floor.

Usage::

    python benchmarks/bench_store.py                       # full 100 x 50k store
    python benchmarks/bench_store.py --streams 12 --recordings 4000 --reads 40
"""

from __future__ import annotations

import argparse
import shutil
import struct
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.core.types import Recording, RecordingKind
from repro.queries.planner import plan_window_aggregates
from repro.storage import SegmentStore, ShardedStore, open_store
from repro.storage.backends.base import KIND_BY_CODE

from bench_utils import write_bench_json

#: Points per bulk-append batch while building the store.
BUILD_BATCH = 8192


# --------------------------------------------------------------------------- #
# Seed read path (verbatim re-implementation of the pre-engine SegmentStore)
# --------------------------------------------------------------------------- #
def seed_read(
    log_path: Path,
    dimensions: int,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> List[Recording]:
    packer = struct.Struct(f"<Bd{dimensions}d")
    recordings: List[Recording] = []
    payload = log_path.read_bytes()
    for offset in range(0, len(payload), packer.size):
        fields = packer.unpack_from(payload, offset)
        recordings.append(
            Recording(fields[1], np.asarray(fields[2:], dtype=float), KIND_BY_CODE[fields[0]])
        )
    if start is None and end is None:
        return recordings
    filtered: List[Recording] = []
    previous: Optional[Recording] = None
    for record in recordings:
        if start is not None and record.time < start:
            previous = record
            continue
        if end is not None and record.time > end:
            if previous is not None:
                filtered.append(previous)
                previous = None
            filtered.append(record)
            break
        if previous is not None:
            filtered.append(previous)
            previous = None
        filtered.append(record)
    if not filtered and previous is not None:
        filtered.append(previous)
    return filtered


def seed_log_path(store, name: str) -> Tuple[Path, int]:
    """Log path + dimensionality of a stream (works for sharded stores)."""
    shard = store.shard_for(name) if isinstance(store, ShardedStore) else store
    return shard._log_path(name), shard.describe(name).dimensions


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
def stream_arrays(index: int, recordings: int, seed: int):
    rng = np.random.default_rng(seed + index)
    times = np.cumsum(rng.uniform(0.5, 1.5, recordings))
    values = np.cumsum(rng.normal(0.0, 0.3, recordings))
    kinds = np.ones(recordings, dtype=np.uint8)  # SEGMENT_END: connected PLA
    kinds[0] = 0  # SEGMENT_START
    return times, values, kinds


def build_store(directory, streams: int, recordings: int, seed: int, shards=None):
    store = open_store(directory, shards=shards, autoflush=False)
    spans = {}
    for index in range(streams):
        name = f"host-{index:03d}/metric"
        times, values, kinds = stream_arrays(index, recordings, seed)
        for lo in range(0, recordings, BUILD_BATCH):
            hi = lo + BUILD_BATCH
            store.append_arrays(name, times[lo:hi], values[lo:hi], kinds=kinds[lo:hi])
        spans[name] = (float(times[0]), float(times[-1]))
    store.flush()
    return store, spans


def random_ranges(spans, reads: int, fraction: float, seed: int):
    rng = np.random.default_rng(seed * 7 + 1)
    names = sorted(spans)
    queries = []
    for _ in range(reads):
        name = names[int(rng.integers(len(names)))]
        first, last = spans[name]
        width = (last - first) * fraction
        start = float(rng.uniform(first, last - width))
        queries.append((name, start, start + width))
    return queries


def identical(left: List[Recording], right: List[Recording]) -> bool:
    return len(left) == len(right) and all(
        a.time == b.time and a.kind == b.kind and np.array_equal(a.value, b.value)
        for a, b in zip(left, right)
    )


# --------------------------------------------------------------------------- #
# Measurements
# --------------------------------------------------------------------------- #
def bench_range_reads(store, queries) -> Tuple[float, float]:
    started = time.perf_counter()
    for name, start, end in queries:
        path, dimensions = seed_log_path(store, name)
        seed_read(path, dimensions, start, end)
    seed_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    for name, start, end in queries:
        store.read(name, start, end)
    engine_elapsed = time.perf_counter() - started
    return seed_elapsed, engine_elapsed


def check_equivalence(store, queries, sample: int = 10) -> None:
    for name, start, end in queries[:sample]:
        path, dimensions = seed_log_path(store, name)
        assert identical(seed_read(path, dimensions, start, end), store.read(name, start, end)), (
            name,
            start,
            end,
        )
    # Full reads too (no range -> the engine decodes everything, vectorized).
    name = queries[0][0]
    path, dimensions = seed_log_path(store, name)
    assert identical(seed_read(path, dimensions), store.read(name))


def check_shard_equivalence(root: Path, seed: int) -> None:
    """A small store must read bit-identically across shard counts 1 and 4."""
    stores = {
        "plain": build_store(root / "eq-plain", 6, 2000, seed)[0],
        "shards-1": build_store(root / "eq-s1", 6, 2000, seed, shards=1)[0],
        "shards-4": build_store(root / "eq-s4", 6, 2000, seed, shards=4)[0],
    }
    reference = stores["plain"]
    for name in reference.stream_names():
        first, last = reference.describe(name).first_time, reference.describe(name).last_time
        mid = first + (last - first) / 3.0
        for label, store in stores.items():
            assert identical(reference.read(name), store.read(name)), (label, name)
            assert identical(
                reference.read(name, mid, mid + (last - first) / 10.0),
                store.read(name, mid, mid + (last - first) / 10.0),
            ), (label, name)


# --------------------------------------------------------------------------- #
# Columnar vs row backend
# --------------------------------------------------------------------------- #
#: Value dimensions of the backend-comparison workload; column pruning reads
#: 17 of the 9 + 8d payload bytes per record, so d=4 keeps the comparison
#: honest without stacking the deck.
COLUMNAR_DIMENSIONS = 4

#: Timing passes per backend; the minimum is reported (page cache is warmed
#: by a discarded pass first, so this measures decode, not disk).
COLUMNAR_PASSES = 3

#: ``np.trapz`` was renamed in NumPy 2.
_trapezoid = getattr(np, "trapezoid", getattr(np, "trapz", None))


def multi_stream_arrays(index: int, recordings: int, dimensions: int, seed: int):
    rng = np.random.default_rng(seed * 13 + index)
    times = np.cumsum(rng.uniform(0.5, 1.5, recordings))
    values = np.cumsum(rng.normal(0.0, 0.3, (recordings, dimensions)), axis=0)
    kinds = np.ones(recordings, dtype=np.uint8)
    kinds[0] = 0
    return times, values, kinds


def build_backend_store(directory, backend: str, streams: int, recordings: int, seed: int):
    store = SegmentStore(directory, backend=backend, autoflush=False)
    spans = {}
    for index in range(streams):
        name = f"sensor-{index:03d}"
        times, values, kinds = multi_stream_arrays(
            index, recordings, COLUMNAR_DIMENSIONS, seed
        )
        for lo in range(0, recordings, BUILD_BATCH):
            hi = lo + BUILD_BATCH
            store.append_arrays(name, times[lo:hi], values[lo:hi], kinds=kinds[lo:hi])
        spans[name] = (float(times[0]), float(times[-1]))
    store.flush()
    return store, spans


def check_backend_equivalence(row_store, col_store, queries, window: float) -> None:
    """Reads bit-identical, planner aggregates within 1e-9, across backends."""
    for name, start, end in queries[:8]:
        for dims in (None, (0,), (2, 1)):
            row = row_store.read_arrays(name, start, end, dims=dims)
            col = col_store.read_arrays(name, start, end, dims=dims)
            for before, after in zip(row, col):
                assert np.array_equal(before, after), (name, dims)
    # Recording-level identity on narrow ranges (object decode is slow).
    for name, start, end in queries[:2]:
        narrow_end = start + (end - start) / 50.0
        assert identical(
            row_store.read(name, start, narrow_end),
            col_store.read(name, start, narrow_end),
        ), (name, start, narrow_end)
    for store_name in sorted({name for name, _, _ in queries[:4]}):
        row_aggs = plan_window_aggregates(row_store, store_name, window=window)
        col_aggs = plan_window_aggregates(col_store, store_name, window=window)
        assert len(row_aggs) == len(col_aggs)
        for before, after in zip(row_aggs, col_aggs):
            for field in ("minimum", "maximum", "mean", "integral"):
                assert abs(getattr(before, field) - getattr(after, field)) <= 1e-9, (
                    store_name,
                    field,
                )


def bench_backend_reads(row_store, col_store, queries) -> Tuple[float, float]:
    """Column-projected range reads (``dims=(0,)``) on both backends."""

    def read_pass(store) -> float:
        started = time.perf_counter()
        for name, start, end in queries:
            store.read_arrays(name, start, end, dims=(0,))
        return time.perf_counter() - started

    read_pass(row_store), read_pass(col_store)  # warm the page cache / mmaps
    row = min(read_pass(row_store) for _ in range(COLUMNAR_PASSES))
    col = min(read_pass(col_store) for _ in range(COLUMNAR_PASSES))
    return row, col


def bench_backend_scan_aggregates(row_store, col_store, queries) -> Tuple[float, float]:
    """Single-column scan aggregates computed from the projected arrays.

    min / max / trapezoid integral over each queried range — the aggregate
    math is shared, so the measured difference is purely how fast each
    backend can hand over one value column plus the times.
    """

    def agg_pass(store) -> float:
        started = time.perf_counter()
        for name, start, end in queries:
            _, scan_times, values = store.read_arrays(name, start, end, dims=(0,))
            column = values[:, 0]
            (
                float(column.min()),
                float(column.max()),
                float(_trapezoid(column, scan_times)),
            )
        return time.perf_counter() - started

    agg_pass(row_store), agg_pass(col_store)
    row = min(agg_pass(row_store) for _ in range(COLUMNAR_PASSES))
    col = min(agg_pass(col_store) for _ in range(COLUMNAR_PASSES))
    return row, col


def bench_backend_planner(row_store, col_store, window: float) -> Tuple[float, float, int]:
    """Single-column planner window sweeps, fresh plan per call (reported
    only: piece clipping dominates and is backend-independent)."""
    names = sorted(row_store.stream_names())

    def sweep_pass(store) -> float:
        started = time.perf_counter()
        for name in names:
            plan_window_aggregates(store, name, window=window, dimension=0)
        return time.perf_counter() - started

    sweep_pass(row_store), sweep_pass(col_store)
    row = min(sweep_pass(row_store) for _ in range(COLUMNAR_PASSES))
    col = min(sweep_pass(col_store) for _ in range(COLUMNAR_PASSES))
    return row, col, len(names)


def bench_append_persistence(root: Path, seed: int, appends: int = 200) -> Tuple[float, float]:
    """Time small appends with write-through vs batched catalog persistence."""

    def run(autoflush: bool) -> float:
        store = SegmentStore(root / f"append-{int(autoflush)}", autoflush=autoflush)
        # Many catalog entries make the per-append rewrite cost visible.
        for index in range(100):
            store.append_arrays(f"s{index:03d}", [0.0], [0.0])
        store.flush()
        batch = [
            Recording(1.0 + step, [float(step)], RecordingKind.HOLD) for step in range(appends)
        ]
        started = time.perf_counter()
        for record in batch:
            store.append("s000", [record])
        store.flush()
        return time.perf_counter() - started

    return run(True), run(False)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--streams", type=int, default=100, help="streams in the store")
    parser.add_argument(
        "--recordings", type=int, default=50_000, help="recordings per stream"
    )
    parser.add_argument("--reads", type=int, default=100, help="random range reads to time")
    parser.add_argument(
        "--range-fraction", type=float, default=0.01, help="range width as span fraction"
    )
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument(
        "--directory", default=None, help="store directory (default: a temp dir)"
    )
    parser.add_argument(
        "--columnar-streams",
        type=int,
        default=None,
        help="streams in the backend-comparison stores (default: streams/12, min 4)",
    )
    parser.add_argument(
        "--columnar-recordings",
        type=int,
        default=None,
        help="recordings per backend-comparison stream (default: at least 100k — "
        "layout effects vanish on tiny reads)",
    )
    parser.add_argument(
        "--columnar-fraction",
        type=float,
        default=0.25,
        help="range width for the backend comparison, as a span fraction",
    )
    parser.add_argument(
        "--read-floor",
        type=float,
        default=3.0,
        help="asserted columnar range-read speedup floor",
    )
    parser.add_argument(
        "--agg-floor",
        type=float,
        default=2.0,
        help="asserted columnar single-column aggregate speedup floor",
    )
    parser.add_argument(
        "--no-check", action="store_true", help="skip the bit-identical equivalence checks"
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="report only; do not enforce the 5x target"
    )
    args = parser.parse_args(argv)

    root = Path(args.directory) if args.directory else Path(tempfile.mkdtemp(prefix="bench-store-"))
    cleanup = args.directory is None
    try:
        print(
            f"building store: {args.streams} streams x {args.recordings:,} recordings "
            f"({args.streams * args.recordings:,} total)"
        )
        started = time.perf_counter()
        store, spans = build_store(root / "store", args.streams, args.recordings, args.seed)
        build_elapsed = time.perf_counter() - started
        total = args.streams * args.recordings
        print(
            f"bulk load: {total / build_elapsed:,.0f} recordings/s "
            f"({store.total_bytes() / 1e6:.1f} MB on disk)"
        )

        queries = random_ranges(spans, args.reads, args.range_fraction, args.seed)
        if not args.no_check:
            check_equivalence(store, queries)
            check_shard_equivalence(root, args.seed)
            print("equivalence: seed and engine reads bit-identical (plain + 1/4 shards)")

        seed_elapsed, engine_elapsed = bench_range_reads(store, queries)
        speedup = seed_elapsed / engine_elapsed if engine_elapsed else float("inf")
        print(
            f"\n{args.reads} range reads ({args.range_fraction:.1%} of span each):\n"
            f"  seed decode : {seed_elapsed * 1e3:9.1f} ms "
            f"({seed_elapsed / args.reads * 1e3:7.2f} ms/read)\n"
            f"  block index : {engine_elapsed * 1e3:9.1f} ms "
            f"({engine_elapsed / args.reads * 1e3:7.2f} ms/read)\n"
            f"  speedup     : {speedup:9.1f}x"
        )

        write_through, batched = bench_append_persistence(root, args.seed)
        print(
            f"\n200 single-recording appends on a 100-stream catalog:\n"
            f"  write-through catalog : {write_through * 1e3:7.1f} ms\n"
            f"  batched (flush once)  : {batched * 1e3:7.1f} ms "
            f"({write_through / batched:.1f}x)"
        )

        columnar_streams = args.columnar_streams
        if columnar_streams is None:
            columnar_streams = max(4, args.streams // 12)
        columnar_recordings = args.columnar_recordings
        if columnar_recordings is None:
            columnar_recordings = max(args.recordings, 100_000)
        print(
            f"\nbackend comparison: {columnar_streams} streams x "
            f"{columnar_recordings:,} recordings x {COLUMNAR_DIMENSIONS} dimensions, "
            "stored twice (block-log / columnar)"
        )
        row_store, col_spans = build_backend_store(
            root / "backend-row", "block-log", columnar_streams, columnar_recordings, args.seed
        )
        col_store, _ = build_backend_store(
            root / "backend-col", "columnar", columnar_streams, columnar_recordings, args.seed
        )
        col_queries = random_ranges(
            col_spans, args.reads, args.columnar_fraction, args.seed + 1
        )
        probe = col_store.describe(sorted(col_spans)[0])
        span = probe.last_time - probe.first_time
        # Deliberately block-unaligned so every window decodes boundary blocks.
        window = span / max(len(probe.blocks), 1) * 1.7
        if not args.no_check:
            check_backend_equivalence(row_store, col_store, col_queries, window)
            print(
                "equivalence: backends read bit-identically, aggregates within 1e-9"
            )

        row_read, col_read = bench_backend_reads(row_store, col_store, col_queries)
        read_speedup = row_read / col_read if col_read else float("inf")
        print(
            f"\n{args.reads} column-projected range reads "
            f"({args.columnar_fraction:.0%} of span, dims=(0,)):\n"
            f"  block-log : {row_read * 1e3:9.1f} ms\n"
            f"  columnar  : {col_read * 1e3:9.1f} ms\n"
            f"  speedup   : {read_speedup:9.1f}x"
        )

        row_agg, col_agg = bench_backend_scan_aggregates(row_store, col_store, col_queries)
        agg_speedup = row_agg / col_agg if col_agg else float("inf")
        print(
            f"\nsingle-column scan aggregates (min/max/integral over each range):\n"
            f"  block-log : {row_agg * 1e3:9.1f} ms\n"
            f"  columnar  : {col_agg * 1e3:9.1f} ms\n"
            f"  speedup   : {agg_speedup:9.1f}x"
        )

        row_sweep, col_sweep, swept = bench_backend_planner(row_store, col_store, window)
        planner_speedup = row_sweep / col_sweep if col_sweep else float("inf")
        print(
            f"\nplanner window sweeps ({swept} streams, fresh plan per sweep; "
            "reported only —\npiece clipping dominates and is backend-independent):\n"
            f"  block-log : {row_sweep * 1e3:9.1f} ms\n"
            f"  columnar  : {col_sweep * 1e3:9.1f} ms\n"
            f"  speedup   : {planner_speedup:9.1f}x"
        )
        floor_margin = min(
            read_speedup / args.read_floor, agg_speedup / args.agg_floor
        )

        path = write_bench_json(
            "store",
            {
                "streams": args.streams,
                "recordings_per_stream": args.recordings,
                "reads": args.reads,
                "build_seconds": build_elapsed,
                "seed_read_seconds": seed_elapsed,
                "engine_read_seconds": engine_elapsed,
                "read_speedup": speedup,
                "append_write_through_seconds": write_through,
                "append_batched_seconds": batched,
                "append_speedup": write_through / batched if batched else None,
                "columnar_streams": columnar_streams,
                "columnar_recordings": columnar_recordings,
                "columnar_dimensions": COLUMNAR_DIMENSIONS,
                "columnar_read_seconds": col_read,
                "block_log_read_seconds": row_read,
                "columnar_read_speedup": read_speedup,
                "columnar_aggregate_seconds": col_agg,
                "block_log_aggregate_seconds": row_agg,
                "columnar_aggregate_speedup": agg_speedup,
                "planner_sweep_speedup": planner_speedup,
                "columnar_read_floor": args.read_floor,
                "columnar_aggregate_floor": args.agg_floor,
                "columnar_floor_margin": floor_margin,
                "asserted_floor": None if args.no_assert else 1.0,
            },
        )
        print(f"results written to {path}")

        if not args.no_assert and speedup < 5.0:
            print("FAIL: block-indexed range reads are below the 5x speedup target")
            return 1
        if not args.no_assert and read_speedup < args.read_floor:
            print(
                f"FAIL: columnar range reads are below the {args.read_floor:g}x "
                "speedup floor"
            )
            return 1
        if not args.no_assert and agg_speedup < args.agg_floor:
            print(
                f"FAIL: columnar single-column aggregates are below the "
                f"{args.agg_floor:g}x speedup floor"
            )
            return 1
        return 0
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
