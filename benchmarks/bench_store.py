"""Storage engine benchmark: block-indexed range reads vs seed decode.

Builds a many-stream store (100 streams x 50k recordings by default), then
answers random time-range reads two ways:

* **seed** — the seed implementation's read path, re-implemented here
  verbatim: decode the *entire* log with a per-record ``struct.unpack`` loop,
  then scan linearly for the requested range;
* **engine** — ``SegmentStore.read``: binary-search the per-block time index
  to the overlapping blocks, decode only those bytes with ``np.frombuffer``.

Both paths return bit-identical recordings (checked on a sample, including
across shard counts 1 and 4); the headline number is the range-read speedup,
asserted to be at least 5x unless ``--no-assert`` is given.  The benchmark
also times small appends with write-through vs batched catalog persistence
to show appends are no longer O(catalog) per call.

Usage::

    python benchmarks/bench_store.py                       # full 100 x 50k store
    python benchmarks/bench_store.py --streams 12 --recordings 4000 --reads 40
"""

from __future__ import annotations

import argparse
import shutil
import struct
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Optional, Tuple

import numpy as np

from repro.core.types import Recording, RecordingKind
from repro.storage import SegmentStore, ShardedStore, open_store
from repro.storage.backends.base import KIND_BY_CODE

from bench_utils import write_bench_json

#: Points per bulk-append batch while building the store.
BUILD_BATCH = 8192


# --------------------------------------------------------------------------- #
# Seed read path (verbatim re-implementation of the pre-engine SegmentStore)
# --------------------------------------------------------------------------- #
def seed_read(
    log_path: Path,
    dimensions: int,
    start: Optional[float] = None,
    end: Optional[float] = None,
) -> List[Recording]:
    packer = struct.Struct(f"<Bd{dimensions}d")
    recordings: List[Recording] = []
    payload = log_path.read_bytes()
    for offset in range(0, len(payload), packer.size):
        fields = packer.unpack_from(payload, offset)
        recordings.append(
            Recording(fields[1], np.asarray(fields[2:], dtype=float), KIND_BY_CODE[fields[0]])
        )
    if start is None and end is None:
        return recordings
    filtered: List[Recording] = []
    previous: Optional[Recording] = None
    for record in recordings:
        if start is not None and record.time < start:
            previous = record
            continue
        if end is not None and record.time > end:
            if previous is not None:
                filtered.append(previous)
                previous = None
            filtered.append(record)
            break
        if previous is not None:
            filtered.append(previous)
            previous = None
        filtered.append(record)
    if not filtered and previous is not None:
        filtered.append(previous)
    return filtered


def seed_log_path(store, name: str) -> Tuple[Path, int]:
    """Log path + dimensionality of a stream (works for sharded stores)."""
    shard = store.shard_for(name) if isinstance(store, ShardedStore) else store
    return shard._log_path(name), shard.describe(name).dimensions


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
def stream_arrays(index: int, recordings: int, seed: int):
    rng = np.random.default_rng(seed + index)
    times = np.cumsum(rng.uniform(0.5, 1.5, recordings))
    values = np.cumsum(rng.normal(0.0, 0.3, recordings))
    kinds = np.ones(recordings, dtype=np.uint8)  # SEGMENT_END: connected PLA
    kinds[0] = 0  # SEGMENT_START
    return times, values, kinds


def build_store(directory, streams: int, recordings: int, seed: int, shards=None):
    store = open_store(directory, shards=shards, autoflush=False)
    spans = {}
    for index in range(streams):
        name = f"host-{index:03d}/metric"
        times, values, kinds = stream_arrays(index, recordings, seed)
        for lo in range(0, recordings, BUILD_BATCH):
            hi = lo + BUILD_BATCH
            store.append_arrays(name, times[lo:hi], values[lo:hi], kinds=kinds[lo:hi])
        spans[name] = (float(times[0]), float(times[-1]))
    store.flush()
    return store, spans


def random_ranges(spans, reads: int, fraction: float, seed: int):
    rng = np.random.default_rng(seed * 7 + 1)
    names = sorted(spans)
    queries = []
    for _ in range(reads):
        name = names[int(rng.integers(len(names)))]
        first, last = spans[name]
        width = (last - first) * fraction
        start = float(rng.uniform(first, last - width))
        queries.append((name, start, start + width))
    return queries


def identical(left: List[Recording], right: List[Recording]) -> bool:
    return len(left) == len(right) and all(
        a.time == b.time and a.kind == b.kind and np.array_equal(a.value, b.value)
        for a, b in zip(left, right)
    )


# --------------------------------------------------------------------------- #
# Measurements
# --------------------------------------------------------------------------- #
def bench_range_reads(store, queries) -> Tuple[float, float]:
    started = time.perf_counter()
    for name, start, end in queries:
        path, dimensions = seed_log_path(store, name)
        seed_read(path, dimensions, start, end)
    seed_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    for name, start, end in queries:
        store.read(name, start, end)
    engine_elapsed = time.perf_counter() - started
    return seed_elapsed, engine_elapsed


def check_equivalence(store, queries, sample: int = 10) -> None:
    for name, start, end in queries[:sample]:
        path, dimensions = seed_log_path(store, name)
        assert identical(seed_read(path, dimensions, start, end), store.read(name, start, end)), (
            name,
            start,
            end,
        )
    # Full reads too (no range -> the engine decodes everything, vectorized).
    name = queries[0][0]
    path, dimensions = seed_log_path(store, name)
    assert identical(seed_read(path, dimensions), store.read(name))


def check_shard_equivalence(root: Path, seed: int) -> None:
    """A small store must read bit-identically across shard counts 1 and 4."""
    stores = {
        "plain": build_store(root / "eq-plain", 6, 2000, seed)[0],
        "shards-1": build_store(root / "eq-s1", 6, 2000, seed, shards=1)[0],
        "shards-4": build_store(root / "eq-s4", 6, 2000, seed, shards=4)[0],
    }
    reference = stores["plain"]
    for name in reference.stream_names():
        first, last = reference.describe(name).first_time, reference.describe(name).last_time
        mid = first + (last - first) / 3.0
        for label, store in stores.items():
            assert identical(reference.read(name), store.read(name)), (label, name)
            assert identical(
                reference.read(name, mid, mid + (last - first) / 10.0),
                store.read(name, mid, mid + (last - first) / 10.0),
            ), (label, name)


def bench_append_persistence(root: Path, seed: int, appends: int = 200) -> Tuple[float, float]:
    """Time small appends with write-through vs batched catalog persistence."""

    def run(autoflush: bool) -> float:
        store = SegmentStore(root / f"append-{int(autoflush)}", autoflush=autoflush)
        # Many catalog entries make the per-append rewrite cost visible.
        for index in range(100):
            store.append_arrays(f"s{index:03d}", [0.0], [0.0])
        store.flush()
        batch = [
            Recording(1.0 + step, [float(step)], RecordingKind.HOLD) for step in range(appends)
        ]
        started = time.perf_counter()
        for record in batch:
            store.append("s000", [record])
        store.flush()
        return time.perf_counter() - started

    return run(True), run(False)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--streams", type=int, default=100, help="streams in the store")
    parser.add_argument(
        "--recordings", type=int, default=50_000, help="recordings per stream"
    )
    parser.add_argument("--reads", type=int, default=100, help="random range reads to time")
    parser.add_argument(
        "--range-fraction", type=float, default=0.01, help="range width as span fraction"
    )
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument(
        "--directory", default=None, help="store directory (default: a temp dir)"
    )
    parser.add_argument(
        "--no-check", action="store_true", help="skip the bit-identical equivalence checks"
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="report only; do not enforce the 5x target"
    )
    args = parser.parse_args(argv)

    root = Path(args.directory) if args.directory else Path(tempfile.mkdtemp(prefix="bench-store-"))
    cleanup = args.directory is None
    try:
        print(
            f"building store: {args.streams} streams x {args.recordings:,} recordings "
            f"({args.streams * args.recordings:,} total)"
        )
        started = time.perf_counter()
        store, spans = build_store(root / "store", args.streams, args.recordings, args.seed)
        build_elapsed = time.perf_counter() - started
        total = args.streams * args.recordings
        print(
            f"bulk load: {total / build_elapsed:,.0f} recordings/s "
            f"({store.total_bytes() / 1e6:.1f} MB on disk)"
        )

        queries = random_ranges(spans, args.reads, args.range_fraction, args.seed)
        if not args.no_check:
            check_equivalence(store, queries)
            check_shard_equivalence(root, args.seed)
            print("equivalence: seed and engine reads bit-identical (plain + 1/4 shards)")

        seed_elapsed, engine_elapsed = bench_range_reads(store, queries)
        speedup = seed_elapsed / engine_elapsed if engine_elapsed else float("inf")
        print(
            f"\n{args.reads} range reads ({args.range_fraction:.1%} of span each):\n"
            f"  seed decode : {seed_elapsed * 1e3:9.1f} ms "
            f"({seed_elapsed / args.reads * 1e3:7.2f} ms/read)\n"
            f"  block index : {engine_elapsed * 1e3:9.1f} ms "
            f"({engine_elapsed / args.reads * 1e3:7.2f} ms/read)\n"
            f"  speedup     : {speedup:9.1f}x"
        )

        write_through, batched = bench_append_persistence(root, args.seed)
        print(
            f"\n200 single-recording appends on a 100-stream catalog:\n"
            f"  write-through catalog : {write_through * 1e3:7.1f} ms\n"
            f"  batched (flush once)  : {batched * 1e3:7.1f} ms "
            f"({write_through / batched:.1f}x)"
        )

        path = write_bench_json(
            "store",
            {
                "streams": args.streams,
                "recordings_per_stream": args.recordings,
                "reads": args.reads,
                "build_seconds": build_elapsed,
                "seed_read_seconds": seed_elapsed,
                "engine_read_seconds": engine_elapsed,
                "read_speedup": speedup,
                "append_write_through_seconds": write_through,
                "append_batched_seconds": batched,
                "append_speedup": write_through / batched if batched else None,
            },
        )
        print(f"results written to {path}")

        if not args.no_assert and speedup < 5.0:
            print("FAIL: block-indexed range reads are below the 5x speedup target")
            return 1
        return 0
    finally:
        if cleanup:
            shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
