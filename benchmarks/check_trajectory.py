"""Diff fresh benchmark results against the committed perf trajectory.

``benchmarks/results/`` holds the repo's committed performance record: one
``BENCH_<name>.json`` snapshot per benchmark (the floor) plus
``TRAJECTORY.jsonl`` with one appended entry per PR that moved a number
(see ``bench_utils.append_trajectory``).  CI re-runs the benchmarks and
then runs this script, which checks every fresh ``BENCH_*.json`` whose
floor-enforced counterpart is committed:

* the fresh headline speedup must be at or above the *committed* asserted
  floor — a regression that sneaks past a benchmark's own assertion (for
  example because someone lowered ``--floor``) still fails here;
* fresh runs made with ``--no-assert`` (reduced CI workloads whose floors
  are not calibrated) are reported but not enforced;
* benchmarks with no committed snapshot, or committed snapshots with no
  fresh run, are reported and skipped — CI does not run every benchmark.

Usage::

    python benchmarks/check_trajectory.py                 # fresh files in cwd
    python benchmarks/check_trajectory.py --fresh-dir out --results-dir benchmarks/results
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Headline metric keys per benchmark; the enforced value is the minimum
#: across the listed keys.  Only benchmarks that record ``asserted_floor``
#: belong here — the committed floor is meaningless for the others.
HEADLINE = {
    "rolling_zoom": ("rolling_speedup",),
    "tangent_hints": ("upper_speedup", "lower_speedup"),
    "query_engine": ("range_speedup",),
    "parallel_ingest": ("speedup",),
    # Normalized columnar-backend margin: min(read speedup / 3x floor,
    # scan-aggregate speedup / 2x floor); at floor the margin is 1.0.
    "store": ("columnar_floor_margin",),
    # Normalized served-ingest margin: points/s over the wire divided by the
    # run's own --floor; at floor the margin is 1.0.
    "server": ("ingest_floor_margin",),
}


def load(path: Path) -> dict:
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def headline(name: str, metrics: dict):
    keys = HEADLINE.get(name)
    if not keys:
        return None
    values = [metrics[key] for key in keys if metrics.get(key) is not None]
    return min(values) if values else None


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_results = Path(__file__).resolve().parent / "results"
    parser.add_argument(
        "--results-dir",
        type=Path,
        default=default_results,
        help="committed trajectory directory (default: benchmarks/results)",
    )
    parser.add_argument(
        "--fresh-dir",
        type=Path,
        default=Path("."),
        help="directory holding the fresh BENCH_*.json files (default: cwd)",
    )
    args = parser.parse_args(argv)

    committed = sorted(args.results_dir.glob("BENCH_*.json"))
    if not committed:
        print(f"no committed BENCH_*.json under {args.results_dir}")
        return 1

    failures = []
    checked = 0
    for committed_path in committed:
        name = committed_path.stem[len("BENCH_") :]
        committed_metrics = load(committed_path).get("metrics", {})
        floor = committed_metrics.get("asserted_floor")
        fresh_path = args.fresh_dir / committed_path.name
        if not fresh_path.exists():
            print(f"  {name:<18} skipped (no fresh run)")
            continue
        fresh_metrics = load(fresh_path).get("metrics", {})
        value = headline(name, fresh_metrics)
        if floor is None or value is None:
            print(f"  {name:<18} {value if value is None else f'{value:.2f}x':>8}  "
                  "informational (no committed floor)")
            continue
        enforced = fresh_metrics.get("asserted_floor") is not None
        status = "OK" if value >= floor else "FAIL"
        if not enforced:
            status = "info"  # reduced workload: floor not calibrated for it
        print(
            f"  {name:<18} fresh {value:7.2f}x  committed floor {floor:g}x  [{status}]"
        )
        if enforced:
            checked += 1
            if value < floor:
                failures.append(name)

    if failures:
        print(f"FAIL: below the committed floor: {', '.join(failures)}")
        return 1
    if not checked:
        print("WARNING: no floor-enforced fresh results were checked")
    else:
        print(f"{checked} benchmark(s) at or above their committed floors")
    return 0


if __name__ == "__main__":
    sys.exit(main())
