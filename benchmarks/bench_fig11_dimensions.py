"""Figure 11 — effect of the number of (independent) dimensions.

Paper reference points: the compression ratio decreases as independent
dimensions are added (any dimension can trigger a new segment), and the slide
and swing filters keep the highest compression ratios at every
dimensionality.
"""

from repro.evaluation.dimensionality import compression_vs_dimensions
from repro.evaluation.report import render_series

from bench_utils import run_once, scaled


def test_fig11_number_of_dimensions(benchmark, bench_scale):
    series = run_once(
        benchmark, compression_vs_dimensions, length=scaled(5_000, bench_scale)
    )

    print()
    print(render_series(series))

    for name, values in series.series.items():
        # Compression for one dimension beats compression for ten dimensions.
        assert values[0] > values[-1], f"{name}: expected monotone-ish decline with d"

    slide = series.series["slide"]
    swing = series.series["swing"]
    cache = series.series["cache"]
    linear = series.series["linear"]
    for index in range(len(series.x_values)):
        assert slide[index] >= max(cache[index], linear[index])
        assert swing[index] >= max(cache[index], linear[index]) * 0.9
