"""Network service benchmark: served ingest throughput and query latency.

Hosts a real :class:`~repro.server.service.StreamDBServer` on an ephemeral
loopback port, then drives it the way a deployment would:

* **ingest** — N blocking clients on threads, each pushing its own streams
  in chunks and ending with a ``sync`` barrier + ``seal``, so the measured
  time covers wire encode/decode, the server's bounded ingest queues *and*
  the filter actually recording every point.  Reported as points/second,
  with a single-client in-process session ingest of the same workload timed
  alongside to show the service overhead honestly.
* **queries** — one client issuing aggregate / resample / read calls over
  random ranges; per-call wall latencies are collected and reported as
  p50 / p99.
* **tail** — a subscriber client alongside a writer; every recording the
  writer produces must arrive through the live tail (completeness is
  asserted), and delivery is reported as events/second.

The asserted floor is served ingest throughput: at least ``--floor``
points/s (deliberately conservative — single-digit-core CI must clear it).
The committed headline is the normalized margin ``ingest_floor_margin``
(throughput / floor; 1.0 at the floor), so the perf trajectory stays
comparable if the floor is ever re-calibrated.

Usage::

    python benchmarks/bench_server.py                       # full workload
    python benchmarks/bench_server.py --clients 2 --points 20000 --queries 40
"""

from __future__ import annotations

import argparse
import asyncio
import shutil
import sys
import tempfile
import threading
import time
from pathlib import Path

import numpy as np

import repro
import repro.client
from repro.api import FilterSpec
from repro.server import StreamDBServer

from bench_utils import write_bench_json

EPSILON = 0.25
FILTER = FilterSpec("slide", epsilon=EPSILON)
CHUNK = 2000


def stream_workload(index: int, points: int, seed: int):
    rng = np.random.default_rng(seed * 31 + index)
    times = np.arange(points, dtype=float)
    values = np.cumsum(rng.normal(0.0, 0.4, points))
    return times, values


class HostedServer:
    """A StreamDBServer on a daemon thread (the bench talks over TCP)."""

    def __init__(self, directory, **kwargs):
        self._directory = directory
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._loop = None
        self._stop = None
        self._thread = None
        self.port = None

    def __enter__(self):
        self._thread = threading.Thread(target=self._host, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=60) or self.port is None:
            raise RuntimeError("server failed to start")
        return self

    def __exit__(self, exc_type, exc, tb):
        self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60)

    def _host(self):
        async def main():
            db = repro.open(self._directory, filter=FILTER)
            server = StreamDBServer(db, port=0, **self._kwargs)
            await server.start()
            self._loop = asyncio.get_running_loop()
            self._stop = asyncio.Event()
            self.port = server.port
            self._ready.set()
            try:
                await self._stop.wait()
            finally:
                await server.aclose()

        try:
            asyncio.run(main())
        finally:
            self._ready.set()


def served_ingest(port, clients, streams_per_client, points, seed):
    """All clients ingest concurrently; returns wall seconds for the slowest."""
    barrier = threading.Barrier(clients + 1)
    errors = []

    def run_client(client_index):
        names = [
            f"host-{client_index:02d}/metric-{s}" for s in range(streams_per_client)
        ]
        try:
            with repro.client.connect("127.0.0.1", port) as client:
                barrier.wait()
                for offset, name in enumerate(names):
                    times, values = stream_workload(
                        client_index * streams_per_client + offset, points, seed
                    )
                    for lo in range(0, points, CHUNK):
                        client.ingest(name, times[lo : lo + CHUNK], values[lo : lo + CHUNK])
                for name in names:
                    client.sync(name)
                    client.seal(name)
        except BaseException as error:  # noqa: BLE001 - reported below
            errors.append(error)
            raise

    threads = [
        threading.Thread(target=run_client, args=(index,)) for index in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise errors[0]
    return elapsed


def local_ingest(directory, clients, streams_per_client, points, seed):
    """The same workload through an in-process session (overhead baseline)."""
    started = time.perf_counter()
    with repro.open(directory, filter=FILTER) as db:
        for index in range(clients * streams_per_client):
            times, values = stream_workload(index, points, seed)
            name = f"local-{index:02d}"
            for lo in range(0, points, CHUNK):
                db.append(name, times[lo : lo + CHUNK], values[lo : lo + CHUNK])
            db.seal(name)
    return time.perf_counter() - started


def served_queries(port, stream, span, queries, seed):
    """Aggregate / resample / read over random ranges; per-call latencies."""
    rng = np.random.default_rng(seed * 17 + 5)
    latencies = []
    with repro.client.connect("127.0.0.1", port) as client:
        client.ping()  # connection warm-up stays out of the measurements
        for index in range(queries):
            width = span * 0.2
            start = float(rng.uniform(0.0, span - width))
            began = time.perf_counter()
            if index % 3 == 0:
                client.aggregate(stream, start, start + width)
            elif index % 3 == 1:
                client.resample(stream, step=width / 50.0, start=start, end=start + width)
            else:
                client.read(stream, start, start + width)
            latencies.append(time.perf_counter() - began)
    return np.asarray(latencies)


def served_tail(port, points, seed):
    """Writer + subscriber on one connection; returns (events, recordings, secs)."""
    times, values = stream_workload(997, points, seed)
    with repro.client.connect("127.0.0.1", port) as client:
        subscription = client.subscribe("tailed/metric")
        started = time.perf_counter()
        for lo in range(0, points, CHUNK):
            client.ingest("tailed/metric", times[lo : lo + CHUNK], values[lo : lo + CHUNK])
        client.sync("tailed/metric")
        sealed_recordings = client.seal("tailed/metric")
        events = list(subscription)
        elapsed = time.perf_counter() - started
    delivered = sum(len(event.recordings) for event in events)
    if delivered != sealed_recordings:
        raise AssertionError(
            f"tail dropped recordings: {delivered} delivered, {sealed_recordings} sealed"
        )
    return len(events), delivered, elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=4, help="concurrent ingest clients")
    parser.add_argument(
        "--streams-per-client", type=int, default=2, help="streams each client owns"
    )
    parser.add_argument("--points", type=int, default=50_000, help="points per stream")
    parser.add_argument("--queries", type=int, default=90, help="timed query calls")
    parser.add_argument(
        "--tail-points", type=int, default=None, help="points for the tail phase (default: --points)"
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--floor",
        type=float,
        default=20_000.0,
        help="asserted served-ingest floor in points/s",
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="report only; do not enforce the floor"
    )
    args = parser.parse_args(argv)

    root = Path(tempfile.mkdtemp(prefix="bench-server-"))
    total_points = args.clients * args.streams_per_client * args.points
    tail_points = args.tail_points or args.points
    try:
        print(
            f"serving ingest: {args.clients} clients x {args.streams_per_client} "
            f"streams x {args.points:,} points ({total_points:,} total, "
            f"chunks of {CHUNK:,})"
        )
        with HostedServer(root / "store") as hosted:
            served_elapsed = served_ingest(
                hosted.port, args.clients, args.streams_per_client, args.points, args.seed
            )
            served_pps = total_points / served_elapsed
            print(
                f"  served ingest : {served_elapsed:7.2f} s "
                f"({served_pps:,.0f} points/s over the wire)"
            )

            latencies = served_queries(
                hosted.port,
                "host-00/metric-0",
                float(args.points - 1),
                args.queries,
                args.seed,
            )
            p50, p99 = np.percentile(latencies, [50, 99])
            print(
                f"  {args.queries} served queries (aggregate/resample/read): "
                f"p50 {p50 * 1e3:.2f} ms, p99 {p99 * 1e3:.2f} ms"
            )

            events, delivered, tail_elapsed = served_tail(
                hosted.port, tail_points, args.seed
            )
            print(
                f"  live tail     : {delivered:,} recordings in {events} events "
                f"({delivered / tail_elapsed:,.0f} recordings/s, completeness checked)"
            )

        local_elapsed = local_ingest(
            root / "local", args.clients, args.streams_per_client, args.points, args.seed
        )
        local_pps = total_points / local_elapsed
        overhead = served_elapsed / local_elapsed if local_elapsed else float("inf")
        print(
            f"  local ingest  : {local_elapsed:7.2f} s ({local_pps:,.0f} points/s "
            f"in-process; service overhead {overhead:.1f}x, reported only)"
        )

        margin = served_pps / args.floor
        path = write_bench_json(
            "server",
            {
                "clients": args.clients,
                "streams_per_client": args.streams_per_client,
                "points_per_stream": args.points,
                "total_points": total_points,
                "served_ingest_seconds": served_elapsed,
                "served_points_per_second": served_pps,
                "local_ingest_seconds": local_elapsed,
                "local_points_per_second": local_pps,
                "service_overhead": overhead,
                "queries": args.queries,
                "query_p50_seconds": float(p50),
                "query_p99_seconds": float(p99),
                "tail_events": events,
                "tail_recordings": delivered,
                "tail_seconds": tail_elapsed,
                "ingest_floor": args.floor,
                "ingest_floor_margin": margin,
                "asserted_floor": None if args.no_assert else 1.0,
            },
        )
        print(f"results written to {path}")

        if not args.no_assert and served_pps < args.floor:
            print(
                f"FAIL: served ingest {served_pps:,.0f} points/s is below the "
                f"{args.floor:,.0f} points/s floor"
            )
            return 1
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
