"""Parallel ingestion benchmark: shard-aligned workers vs a single process.

Builds a multi-stream workload (8 streams by default, generated *inside* the
workers via loaders, so no arrays cross the process boundary), then ingests
it twice through ``StreamDB.ingest_many`` — the session façade over the
shard-aligned :class:`repro.runtime.ParallelIngestor` — on the same code
path:

* **serial** — ``workers=1``: every shard ingested inline in this process;
* **parallel** — ``workers=N`` (default 4): one process per group of shards,
  each exclusively owning its shards' segment stores.

Per-stream filters are independent, so the two stores must be bit-identical
(checked on every stream's log bytes); the headline number is the wall-clock
speedup, asserted to be at least 2x unless ``--no-assert`` is given.  The
floor is automatically waived when the machine exposes fewer CPU cores than
``--workers`` — with 2 cores for 4 workers, perfect scaling already tops
out at 2x, so the assertion would measure the scheduler, not the runtime.

Usage::

    python benchmarks/bench_parallel_ingest.py                 # 8 x 120k points
    python benchmarks/bench_parallel_ingest.py --streams 8 --points 30000
"""

from __future__ import annotations

import argparse
import functools
import hashlib
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro.runtime import StreamTask
from repro.storage import open_store

from bench_utils import write_bench_json

#: Default worker count of the parallel run.
DEFAULT_WORKERS = 4


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
def stream_arrays(index: int, points: int, seed: int):
    """Generate one stream's arrays (module level: workers call it by pickle)."""
    rng = np.random.default_rng(seed + index)
    times = np.cumsum(rng.uniform(0.5, 1.5, points))
    values = np.cumsum(rng.normal(0.0, 0.3, points))
    return times, values


def make_tasks(streams: int, points: int, seed: int, shards: int):
    """Build the workload with stream names that hash evenly across shards.

    Hash skew would cap the measurable speedup below the worker count (one
    worker owning 3 of 8 streams limits perfect scaling to 8/3x), so names
    are picked greedily until every shard carries at most its fair share —
    the benchmark measures the runtime, not the luck of the draw.
    """
    from repro.storage import shard_index

    quota = -(-streams // shards)  # ceil
    counts = [0] * shards
    tasks = []
    index = 0
    while len(tasks) < streams:
        name = f"host-{index:03d}/metric"
        shard = shard_index(name, shards)
        if counts[shard] < quota:
            counts[shard] += 1
            tasks.append(
                StreamTask(
                    name=name,
                    loader=functools.partial(stream_arrays, index, points, seed),
                )
            )
        index += 1
    return tasks


# --------------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------------- #
def run_ingest(directory, tasks, workers: int, shards: int, epsilon: float):
    started = time.perf_counter()
    with repro.open(
        directory, shards=shards, filter=repro.FilterSpec("swing", epsilon=epsilon)
    ) as db:
        report = db.ingest_many(tasks, workers=workers)
    elapsed = time.perf_counter() - started
    assert report.streams == len(tasks)
    return elapsed, report


def store_digests(directory: Path):
    return {
        path.relative_to(directory).as_posix(): hashlib.blake2b(
            path.read_bytes()
        ).hexdigest()
        for path in sorted(Path(directory).rglob("*.seg"))
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--streams", type=int, default=8)
    parser.add_argument("--points", type=int, default=120_000, help="points per stream")
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS)
    parser.add_argument("--epsilon", type=float, default=0.25)
    parser.add_argument("--seed", type=int, default=2009)
    parser.add_argument(
        "--floor", type=float, default=2.0, help="minimum speedup asserted"
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="report without asserting the floor"
    )
    args = parser.parse_args(argv)

    tasks = make_tasks(args.streams, args.points, args.seed, args.workers)
    total_points = args.streams * args.points
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    print(
        f"workload: {args.streams} streams x {args.points} points "
        f"(epsilon {args.epsilon}), {cores} core(s) available"
    )

    root = Path(tempfile.mkdtemp(prefix="bench-parallel-ingest-"))
    try:
        serial_elapsed, serial_report = run_ingest(
            root / "serial", tasks, 1, args.workers, args.epsilon
        )
        print(
            f"serial   (1 process) : {serial_elapsed:8.3f} s  "
            f"({total_points / serial_elapsed:>12,.0f} points/s, "
            f"{serial_report.recordings} recordings)"
        )
        parallel_elapsed, parallel_report = run_ingest(
            root / "parallel", tasks, args.workers, args.workers, args.epsilon
        )
        print(
            f"parallel ({args.workers} workers) : {parallel_elapsed:8.3f} s  "
            f"({total_points / parallel_elapsed:>12,.0f} points/s, "
            f"{parallel_report.recordings} recordings)"
        )

        assert serial_report.recordings == parallel_report.recordings
        if store_digests(root / "serial") != store_digests(root / "parallel"):
            print("FAIL: parallel store differs from the single-process store")
            return 1
        print("stores bit-identical : yes")

        speedup = serial_elapsed / parallel_elapsed if parallel_elapsed > 0 else 0.0
        print(f"speedup              : {speedup:.2f}x (floor {args.floor:.1f}x)")
        path = write_bench_json(
            "parallel_ingest",
            {
                "streams": args.streams,
                "points_per_stream": args.points,
                "workers": args.workers,
                "cores": cores,
                "serial_seconds": serial_elapsed,
                "parallel_seconds": parallel_elapsed,
                "speedup": speedup,
                "recordings": serial_report.recordings,
            },
        )
        print(f"results written to {path}")
        if args.no_assert:
            return 0
        if cores is not None and cores < args.workers:
            # With fewer cores than workers, perfect scaling tops out at
            # `cores`x — on a 2-core machine a 2.0x floor would measure the
            # scheduler, not the runtime.
            print(
                f"floor waived: only {cores} core(s) for {args.workers} workers, "
                "parallel workers cannot fully overlap"
            )
            return 0
        if speedup < args.floor:
            print(f"FAIL: speedup {speedup:.2f}x below the {args.floor:.1f}x floor")
            return 1
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
