"""Query engine benchmark: block-summary planner vs decode-path aggregates.

Builds one slide-compressed stream stored across >= 100 index blocks, then
answers the same aggregate queries two ways:

* **decode** — the reference path: ``store.read`` over the range, rebuild
  ``Recording`` objects, ``reconstruct`` the approximation, aggregate its
  pieces;
* **planner** — :func:`repro.queries.planner.plan_range_aggregate` /
  ``plan_window_aggregates``: compose the pre-aggregated per-block summaries
  for fully-covered blocks and decode only the (at most two) blocks each
  range boundary straddles.

Every answer is checked to match the decode path within the planner's
documented :data:`~repro.queries.planner.TOLERANCE`; the headline number is
the aggregate-query speedup, asserted to be at least 10x unless
``--no-assert`` is given.

Usage::

    python benchmarks/bench_query_engine.py                  # full workload
    python benchmarks/bench_query_engine.py --points 20000 --queries 15
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import List, Tuple

import numpy as np

from repro.approximation.reconstruct import reconstruct
from repro.core.registry import create_filter
from repro.queries.aggregates import range_aggregate, window_aggregates
from repro.queries.planner import (
    TOLERANCE,
    plan_range_aggregate,
    plan_window_aggregates,
)
from repro.storage import SegmentStore

from bench_utils import write_bench_json

#: Index blocks the built store must at least have — the scale the asserted
#: speedup floor is calibrated against.
MIN_BLOCKS = 100

_FIELDS = ("minimum", "maximum", "mean", "integral")


# --------------------------------------------------------------------------- #
# Workload
# --------------------------------------------------------------------------- #
def build_store(directory: Path, points: int, epsilon: float, seed: int) -> SegmentStore:
    """Slide-compress a random walk and store it across >= MIN_BLOCKS blocks."""
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(0.2, 1.5, points))
    values = np.cumsum(rng.normal(0.0, 1.0, points)).reshape(-1, 1)
    filt = create_filter("slide", epsilon)
    recordings = filt.process_batch(times, values) + filt.finish()
    block_records = max(8, len(recordings) // 150)
    store = SegmentStore(directory, block_records=block_records)
    store.append("s", recordings)
    store.flush()
    return store


def random_ranges(store: SegmentStore, queries: int, seed: int) -> List[Tuple[float, float]]:
    entry = store.describe("s")
    lo, hi = entry.first_time, entry.last_time
    rng = np.random.default_rng(seed * 13 + 5)
    ranges = []
    for _ in range(queries):
        width = (hi - lo) * float(rng.uniform(0.4, 0.7))
        start = float(rng.uniform(lo, hi - width))
        ranges.append((start, start + width))
    return ranges


def matches(got, ref) -> bool:
    return all(
        abs(getattr(got, field) - getattr(ref, field))
        <= max(abs(getattr(got, field)), abs(getattr(ref, field))) * TOLERANCE + TOLERANCE
        for field in _FIELDS
    )


# --------------------------------------------------------------------------- #
# Measurements
# --------------------------------------------------------------------------- #
def bench_ranges(store: SegmentStore, ranges) -> Tuple[float, float]:
    """Time the decode path vs the planner over the same range queries."""
    started = time.perf_counter()
    decode_results = [
        range_aggregate(reconstruct(store.read("s", a, b)), a, b) for a, b in ranges
    ]
    decode_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    planner_results = [plan_range_aggregate(store, "s", a, b) for a, b in ranges]
    planner_elapsed = time.perf_counter() - started

    for got, ref, query in zip(planner_results, decode_results, ranges):
        assert matches(got, ref), (query, got, ref)
    return decode_elapsed, planner_elapsed


def bench_windows(store: SegmentStore, windows: int) -> Tuple[float, float]:
    """Time one tumbling-window sweep over the full stream span, both ways."""
    entry = store.describe("s")
    lo, hi = entry.first_time, entry.last_time
    window = (hi - lo) / windows

    started = time.perf_counter()
    decode_results = window_aggregates(reconstruct(store.read("s", lo, hi)), lo, hi, window)
    decode_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    planner_results = plan_window_aggregates(store, "s", window, lo, hi)
    planner_elapsed = time.perf_counter() - started

    assert len(planner_results) == len(decode_results)
    for index, (got, ref) in enumerate(zip(planner_results, decode_results)):
        assert matches(got, ref), (index, got, ref)
    return decode_elapsed, planner_elapsed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=80_000, help="raw points to compress")
    parser.add_argument("--epsilon", type=float, default=0.4, help="filter precision width")
    parser.add_argument("--queries", type=int, default=30, help="random range queries to time")
    parser.add_argument("--windows", type=int, default=200, help="windows in the sweep")
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument(
        "--floor", type=float, default=10.0, help="asserted range-query speedup floor"
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="report only; do not enforce the floor"
    )
    args = parser.parse_args(argv)

    root = Path(tempfile.mkdtemp(prefix="bench-query-engine-"))
    try:
        store = build_store(root / "store", args.points, args.epsilon, args.seed)
        entry = store.describe("s")
        blocks = len(entry.blocks)
        assert blocks >= MIN_BLOCKS, f"workload too small: {blocks} blocks < {MIN_BLOCKS}"
        print(
            f"stream: {args.points:,} points -> {entry.recordings:,} recordings "
            f"across {blocks} index blocks"
        )

        ranges = random_ranges(store, args.queries, args.seed)
        decode_r, planner_r = bench_ranges(store, ranges)
        range_speedup = decode_r / planner_r if planner_r else float("inf")
        print(
            f"\n{args.queries} range aggregates (40-70% of span each):\n"
            f"  decode path : {decode_r * 1e3:9.1f} ms "
            f"({decode_r / args.queries * 1e3:7.2f} ms/query)\n"
            f"  planner     : {planner_r * 1e3:9.1f} ms "
            f"({planner_r / args.queries * 1e3:7.2f} ms/query)\n"
            f"  speedup     : {range_speedup:9.1f}x  (answers match within {TOLERANCE:g})"
        )

        decode_w, planner_w = bench_windows(store, args.windows)
        window_speedup = decode_w / planner_w if planner_w else float("inf")
        print(
            f"\n{args.windows}-window sweep over the full span:\n"
            f"  decode path : {decode_w * 1e3:9.1f} ms\n"
            f"  planner     : {planner_w * 1e3:9.1f} ms\n"
            f"  speedup     : {window_speedup:9.1f}x"
        )

        path = write_bench_json(
            "query_engine",
            {
                "points": args.points,
                "recordings": entry.recordings,
                "blocks": blocks,
                "range_queries": args.queries,
                "decode_range_seconds": decode_r,
                "planner_range_seconds": planner_r,
                "range_speedup": range_speedup,
                "windows": args.windows,
                "decode_window_seconds": decode_w,
                "planner_window_seconds": planner_w,
                "window_speedup": window_speedup,
                "asserted_floor": None if args.no_assert else args.floor,
            },
        )
        print(f"results written to {path}")

        if not args.no_assert and range_speedup < args.floor:
            print(
                f"FAIL: planner range aggregates are below the {args.floor:g}x speedup floor"
            )
            return 1
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
