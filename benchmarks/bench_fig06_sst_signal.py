"""Figure 6 — the sea-surface-temperature workload itself.

The paper's Figure 6 plots the raw SST signal (1285 points sampled every 10
minutes, ranging between roughly 20.5 °C and 24.5 °C).  This benchmark
generates the surrogate series, prints its summary statistics and times the
generation.
"""

import numpy as np

from repro.data.sst import (
    SST_MAX_CELSIUS,
    SST_MIN_CELSIUS,
    SST_POINT_COUNT,
    SST_SAMPLING_MINUTES,
    sea_surface_temperature,
)

from bench_utils import run_once


def test_fig06_sst_signal(benchmark):
    times, values = run_once(benchmark, sea_surface_temperature)

    assert len(times) == SST_POINT_COUNT
    assert times[1] - times[0] == SST_SAMPLING_MINUTES
    assert values.min() >= SST_MIN_CELSIUS - 1e-9
    assert values.max() <= SST_MAX_CELSIUS + 1e-9

    increments = np.diff(values)
    print()
    print("Figure 6: sea surface temperature surrogate")
    print(f"  points              : {len(values)}")
    print(f"  sampling interval   : {times[1] - times[0]:.0f} minutes")
    print(f"  value range         : {values.min():.2f} .. {values.max():.2f} degC")
    print(f"  mean / std          : {values.mean():.2f} / {values.std():.2f} degC")
    print(f"  upward moves        : {int(np.sum(increments > 0))}")
    print(f"  downward moves      : {int(np.sum(increments < 0))}")
    print(f"  unchanged samples   : {int(np.sum(increments == 0))}")
