"""Extension benchmark — the paper's filters vs related-work baselines.

Puts the swing/slide results in the wider context discussed in the paper's
related-work section (§6): a dead-band Kalman predictor (Jain et al. [15])
and the optimal piece-wise constant approximation (Lazaridis & Mehrotra
[18]).  The paper argues that Kalman filters cannot maintain the *set* of
candidate segments the swing/slide filters keep, and that piece-wise constant
output is fundamentally more limited than piece-wise linear output — this
benchmark quantifies both statements on the SST workload.
"""

from repro.core.epsilon import epsilon_from_percent
from repro.core.registry import create_filter
from repro.data.sst import sea_surface_temperature
from repro.evaluation.report import render_table
from repro.extensions.kalman import KalmanFilterPredictor
from repro.extensions.optimal_pca import optimal_segment_count

from bench_utils import run_once

PRECISION_PERCENTS = (0.316, 1.0, 3.16, 10.0)


def _run_comparison():
    times, values = sea_surface_temperature()
    rows = [["ε (% of range)", "slide", "swing", "cache-midrange", "kalman", "optimal constant"]]
    results = {}
    for percent in PRECISION_PERCENTS:
        epsilon = epsilon_from_percent(percent, values)
        counts = {
            "slide": create_filter("slide", epsilon).process(zip(times, values)).recording_count,
            "swing": create_filter("swing", epsilon).process(zip(times, values)).recording_count,
            "cache-midrange": create_filter("cache-midrange", epsilon)
            .process(zip(times, values))
            .recording_count,
            "kalman": KalmanFilterPredictor(epsilon).process(zip(times, values)).recording_count,
            "optimal-constant": optimal_segment_count(values, epsilon),
        }
        results[percent] = counts
        n = len(times)
        rows.append(
            [f"{percent}"]
            + [f"{n / counts[key]:.2f}" for key in ("slide", "swing", "cache-midrange", "kalman")]
            + [f"{n / counts['optimal-constant']:.2f}"]
        )
    return rows, results


def test_extension_baselines(benchmark):
    rows, results = run_once(benchmark, _run_comparison)

    print()
    print("Compression ratio: paper filters vs related-work baselines (SST signal)")
    print(render_table(rows))

    for percent, counts in results.items():
        # The slide filter needs no more recordings than the Kalman dead-band
        # predictor at any precision (the paper's §6 argument).
        assert counts["slide"] <= counts["kalman"]
        # The midrange cache filter equals the offline piece-wise constant
        # optimum (it cannot possibly beat it).
        assert counts["cache-midrange"] >= counts["optimal-constant"]
        # Piece-wise linear output keeps pace with the *optimal* piece-wise
        # constant approximation even though each disconnected segment costs
        # two recordings instead of one.
        if percent >= 3.16:
            assert counts["slide"] <= 1.15 * counts["optimal-constant"]
