"""Figure 8 — average error vs precision width on the SST signal.

Paper reference points (Figure 8): the average error of every filter stays
well below the prescribed precision width (the paper quotes 4.5 % of the
range for the swing filter at a 10 % precision width), and the linear filter
(lowest compression) has the lowest average error.
"""

from repro.evaluation.precision_sweep import precision_sweep
from repro.evaluation.report import render_series

from bench_utils import run_once


def test_fig08_average_error_sst(benchmark):
    _, error = run_once(benchmark, precision_sweep)

    print()
    print(render_series(error))

    for name, series in error.series.items():
        for percent, value in zip(error.x_values, series):
            assert value <= percent, (
                f"{name}: average error {value:.3f}% exceeds the precision width {percent}%"
            )
    # At the 10% precision width the paper reports ~4.5% average error for the
    # swing filter (the largest among the filters); ours should stay in the
    # same ballpark — well below the 10% guarantee.
    assert error.series["swing"][-1] <= 6.0
    # The linear filter trades compression for a lower average error.
    assert error.series["linear"][-1] <= error.series["slide"][-1]
