"""Figure 7 — compression ratio vs precision width on the SST signal.

Paper reference points (Figure 7): the slide filter dominates every other
filter across the whole precision sweep; the swing filter comes second; the
cache filter beats the linear filter on this signal.
"""

from repro.evaluation.precision_sweep import precision_sweep
from repro.evaluation.report import render_series

from bench_utils import run_once


def test_fig07_compression_ratio_sst(benchmark):
    compression, _ = run_once(benchmark, precision_sweep)

    print()
    print(render_series(compression))

    slide = compression.series["slide"]
    swing = compression.series["swing"]
    cache = compression.series["cache"]
    linear = compression.series["linear"]

    # Shape checks mirroring the paper's reading of the figure.
    for index in range(len(compression.x_values)):
        assert slide[index] >= swing[index], "slide must dominate swing"
        assert slide[index] >= cache[index], "slide must dominate cache"
        assert slide[index] >= linear[index], "slide must dominate linear"
        assert cache[index] >= linear[index], "cache beats linear on the SST signal"
    # Compression grows with the precision width and always stays above 1.
    for series in compression.series.values():
        assert all(value >= 1.0 for value in series)
        assert series[-1] > series[0]
    # The paper reports an improvement of slide over linear of up to ~19x at
    # the 10% precision width; require at least a 3x gap on the surrogate.
    assert slide[-1] / linear[-1] >= 3.0
