"""Figure 13 — filtering overhead (µs per data point) on the SST signal.

Paper reference points: the cache, linear, swing and (optimized) slide
filters all stay flat as the precision width — and hence the filtering
interval length — grows, while the non-optimized slide filter's per-point
cost grows with the interval length; the optimized slide filter is the most
expensive of the scalable filters.  Absolute numbers depend on the host (the
paper used a 3 GHz Pentium 4 and reported a few µs per point).
"""

from repro.evaluation.overhead import overhead_vs_precision
from repro.evaluation.report import render_series

from bench_utils import run_once


def test_fig13_filtering_overhead(benchmark):
    series = run_once(benchmark, overhead_vs_precision, repeats=2)

    print()
    print(render_series(series))

    def growth(name):
        values = series.series[name]
        start = max(sum(values[:2]) / 2.0, 1e-9)
        end = max(sum(values[-2:]) / 2.0, 1e-9)
        return end / start

    # The scalable filters stay roughly flat as the precision width (and the
    # interval length) grows; the non-optimized slide filter does not.
    unoptimized_growth = growth("slide-unoptimized")
    for name in ("cache", "linear", "swing", "slide"):
        assert growth(name) <= unoptimized_growth, (
            f"{name} should scale better than the non-optimized slide filter"
        )
    assert unoptimized_growth >= 2.0 * growth("slide"), (
        "removing the convex-hull optimization must visibly hurt scalability"
    )

    # The optimized slide filter costs more per point than the swing filter
    # (it maintains convex hulls), matching the paper's 8 vs 4 µs observation.
    slide_mean = sum(series.series["slide"]) / len(series.series["slide"])
    swing_mean = sum(series.series["swing"]) / len(series.series["swing"])
    assert slide_mean >= swing_mean * 0.8
