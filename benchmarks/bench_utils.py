"""Helpers shared by the benchmark modules."""

from __future__ import annotations


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def scaled(length: int, scale: float, minimum: int = 500) -> int:
    """Scale a workload length, keeping a sensible minimum."""
    return max(int(length * scale), minimum)
