"""Helpers shared by the benchmark modules."""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Any, Dict, Optional


def run_once(benchmark, function, *args, **kwargs):
    """Execute ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def scaled(length: int, scale: float, minimum: int = 500) -> int:
    """Scale a workload length, keeping a sensible minimum."""
    return max(int(length * scale), minimum)


def write_bench_json(
    name: str, metrics: Dict[str, Any], directory: Optional[str] = None
) -> str:
    """Write a machine-readable ``BENCH_<name>.json`` result file.

    Every benchmark run leaves one behind so the perf trajectory of the repo
    is recorded (CI archives them as artifacts).  The payload wraps the
    caller's ``metrics`` dict with enough environment metadata to compare
    runs across machines.

    Args:
        name: Benchmark identifier; the file is ``BENCH_<name>.json``.
        metrics: JSON-serializable measurement results.
        directory: Output directory; defaults to ``$BENCH_OUTPUT_DIR`` or the
            current working directory.

    Returns:
        The path of the written file.
    """
    directory = directory or os.environ.get("BENCH_OUTPUT_DIR", ".")
    os.makedirs(directory, exist_ok=True)
    payload = {
        "name": name,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "metrics": metrics,
    }
    path = os.path.join(directory, f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def append_trajectory(
    name: str,
    metrics: Dict[str, Any],
    label: str,
    directory: Optional[str] = None,
) -> str:
    """Append one per-PR entry to the committed perf trajectory.

    The trajectory lives in ``benchmarks/results/TRAJECTORY.jsonl`` — one
    JSON object per line, appended (never rewritten) so the file's history
    mirrors the repo's performance history.  Each PR that moves a benchmark
    commits its fresh ``BENCH_*.json`` under ``benchmarks/results/`` *and*
    appends a trajectory entry here; CI replays the benchmarks and
    ``benchmarks/check_trajectory.py`` diffs the fresh numbers against the
    committed floors.

    Args:
        name: Benchmark identifier (matches the ``BENCH_<name>.json`` file).
        metrics: The run's headline metrics (JSON-serializable).
        label: Which change the entry records, e.g. ``"PR7"``.
        directory: Trajectory directory; defaults to ``benchmarks/results``
            next to this file.

    Returns:
        The path of the trajectory file.
    """
    if directory is None:
        directory = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(directory, exist_ok=True)
    record = {
        "label": label,
        "name": name,
        "created_unix": time.time(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "metrics": metrics,
    }
    path = os.path.join(directory, "TRAJECTORY.jsonl")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path
