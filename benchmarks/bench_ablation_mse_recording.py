"""Ablation A1 — MSE-optimal recording (paper §3.2) vs mid-slope recording.

The swing filter's recording mechanism picks, among the admissible slopes,
the one minimizing the interval's mean square error.  This ablation replaces
it with the middle of the admissible slope range and measures what the
optimization buys: a lower average error at (essentially) the same number of
recordings.
"""

from repro.evaluation.ablations import recording_policy_ablation

from bench_utils import run_once


def test_ablation_mse_recording(benchmark):
    result = run_once(benchmark, recording_policy_ablation, precision_percent=3.16)

    print()
    print("Ablation: swing recording policy (SST signal, precision width 3.16% of range)")
    print(f"  recordings (MSE-optimal) : {result.recordings_mse}")
    print(f"  recordings (mid-slope)   : {result.recordings_midslope}")
    print(f"  mean error (MSE-optimal) : {result.mean_error_mse:.4f} degC")
    print(f"  mean error (mid-slope)   : {result.mean_error_midslope:.4f} degC")
    print(f"  error reduction          : {result.error_reduction_percent:.1f}%")

    # The MSE recording is a secondary objective: compression stays virtually
    # identical while the average error goes down.
    assert abs(result.recordings_mse - result.recordings_midslope) <= 0.05 * result.recordings_midslope
    assert result.mean_error_mse <= result.mean_error_midslope
    assert result.error_reduction_percent >= 0.0
