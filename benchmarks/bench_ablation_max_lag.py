"""Ablation A4 — compression vs the transmitter lag bound m_max_lag (§3.3).

The paper sets m_max_lag to a large value in its experiments "to assess the
filters' full compression power"; this ablation shows the price of tighter
lag bounds: compression degrades gracefully as the bound shrinks and
approaches the unbounded figure as it grows.
"""

from repro.evaluation.ablations import max_lag_ablation
from repro.evaluation.report import render_series

from bench_utils import run_once, scaled


def test_ablation_max_lag(benchmark, bench_scale):
    series = run_once(benchmark, max_lag_ablation, length=scaled(10_000, bench_scale))

    print()
    print(render_series(series))

    for name in ("swing", "slide"):
        values = series.series[name]
        unbounded = values[-1]
        # Tighter lag bounds can only cost compression.
        assert all(value <= unbounded * 1.001 for value in values[:-1])
        # A very tight bound must be visibly worse than no bound.
        assert values[0] < unbounded
        # A loose bound gets within 25% of the unbounded compression.
        assert values[-2] >= unbounded * 0.75
