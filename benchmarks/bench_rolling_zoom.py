"""Rolling-window + zoom-pyramid benchmark vs the decode path.

Builds one slide-compressed stream stored across >= 150 index blocks, then:

* **rolling** — a dense rolling-window sweep (``step < window``) answered by
  the planner's incremental composer (prefix sums + monotonic deques over
  block summaries and bridge atoms) vs the per-window decode path: every
  window read, reconstructed and aggregated from scratch.  Asserted >= 10x
  unless ``--no-assert``; answers are additionally checked against a single
  whole-range decode sweep (the exact reference semantics).
* **zoom** — 100-cell dashboard viewports answered from the persisted
  summary pyramid vs uniform bins over the decoded pieces.  Asserts the
  structural guarantees on every query: the answer stays within the cell
  budget and decodes at most the two blocks the viewport edges cut —
  fully-covered interior blocks are answered from summaries alone.

Every rolling answer is checked against the decode path within the
planner's documented tolerance, and every zoom cell against a closed-range
clip of the decoded pieces.

Usage::

    python benchmarks/bench_rolling_zoom.py                  # full workload
    python benchmarks/bench_rolling_zoom.py --points 20000 --sweeps 3
"""

from __future__ import annotations

import argparse
import shutil
import sys
import tempfile
import time
from pathlib import Path
from typing import Tuple

import numpy as np

from repro.approximation.reconstruct import reconstruct
from repro.core.registry import create_filter
from repro.queries.aggregates import (
    _segments_of,
    clip_aggregate,
    range_aggregate,
    window_aggregates,
)
from repro.queries.planner import TOLERANCE, plan_window_aggregates
from repro.queries.pyramid import plan_zoom, zoom_cells
from repro.storage import SegmentStore

from bench_utils import write_bench_json

#: Index blocks the built store must at least have — the scale the asserted
#: speedup floor is calibrated against.
MIN_BLOCKS = 150

#: Zoom viewport budget (the acceptance scenario: a 100-cell dashboard).
ZOOM_BUDGET = 100

_FIELDS = ("minimum", "maximum", "mean", "integral")


def build_store(directory: Path, points: int, epsilon: float, seed: int) -> SegmentStore:
    """Slide-compress a random walk and store it across >= MIN_BLOCKS blocks."""
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(0.2, 1.5, points))
    values = np.cumsum(rng.normal(0.0, 1.0, points)).reshape(-1, 1)
    filt = create_filter("slide", epsilon)
    recordings = filt.process_batch(times, values) + filt.finish()
    block_records = max(8, len(recordings) // 220)
    store = SegmentStore(directory, block_records=block_records)
    store.append("s", recordings)
    store.flush()
    return store


def matches(got, ref) -> bool:
    return all(
        abs(getattr(got, field) - getattr(ref, field))
        <= max(abs(getattr(got, field)), abs(getattr(ref, field))) * TOLERANCE + TOLERANCE
        for field in _FIELDS
    )


def bench_rolling(store: SegmentStore, sweeps: int) -> Tuple[float, float, int]:
    """Time rolling sweeps (step = window / 4): planner vs per-window decode."""
    entry = store.describe("s")
    lo, hi = entry.first_time, entry.last_time
    window = (hi - lo) / 60
    step = window / 4  # 4x overlap: the incremental composer's home turf

    # Correctness reference (untimed): one whole-range decode, array sweep.
    reference = window_aggregates(
        reconstruct(store.read("s", lo, hi)), lo, hi, window, step=step
    )

    # The naive path a consumer without the composer runs: decode every
    # window from the store on its own.
    started = time.perf_counter()
    for _ in range(sweeps):
        for result in reference:
            a, b = result.start, result.end
            range_aggregate(reconstruct(store.read("s", a, b)), a, b)
    decode_elapsed = time.perf_counter() - started

    started = time.perf_counter()
    planner_results = plan_window_aggregates(store, "s", window, lo, hi, step=step)
    for _ in range(sweeps - 1):
        plan_window_aggregates(store, "s", window, lo, hi, step=step)
    planner_elapsed = time.perf_counter() - started

    assert len(planner_results) == len(reference)
    for index, (got, ref) in enumerate(zip(planner_results, reference)):
        assert matches(got, ref), (index, got, ref)
    return decode_elapsed, planner_elapsed, len(planner_results)


def bench_zoom(store: SegmentStore, viewports: int, seed: int) -> Tuple[float, float, int]:
    """Time 100-cell zoom viewports: pyramid vs decoded uniform bins.

    Asserts, per viewport: the budget bound, >= 10x fewer summaries touched
    than blocks spanned (via the decode counter), and cell-exactness against
    a closed-range clip of the decoded pieces.
    """
    entry = store.describe("s")
    lo, hi = entry.first_time, entry.last_time
    store.pyramid_levels("s")  # build + persist once, outside the timing
    rng = np.random.default_rng(seed * 7 + 3)
    queries = []
    for _ in range(viewports):
        width = (hi - lo) * float(rng.uniform(0.3, 0.9))
        start = float(rng.uniform(lo, hi - width))
        queries.append((start, start + width))

    approximation = reconstruct(store.read("s"))
    t0, x0, t1, x1 = _segments_of(approximation, 0)

    started = time.perf_counter()
    reference = [zoom_cells(approximation, a, b, ZOOM_BUDGET) for a, b in queries]
    decode_elapsed = time.perf_counter() - started

    decodes = []
    original = SegmentStore.read_block_arrays

    def counting(self, name, lo_block, hi_block):
        decodes.append(hi_block - lo_block)
        return original(self, name, lo_block, hi_block)

    SegmentStore.read_block_arrays = counting
    try:
        started = time.perf_counter()
        answers = []
        for a, b in queries:
            before = len(decodes)
            cells = plan_zoom(store, "s", a, b, max_points=ZOOM_BUDGET)
            blocks_decoded = sum(decodes[before:])
            assert blocks_decoded <= 2, (a, b, blocks_decoded)
            answers.append(cells)
        pyramid_elapsed = time.perf_counter() - started
    finally:
        SegmentStore.read_block_arrays = original

    tolerance = TOLERANCE
    for (a, b), cells, ref in zip(queries, answers, reference):
        assert len(cells) <= ZOOM_BUDGET, (a, b, len(cells))
        for cell in cells:
            minimum, maximum, area, covered = clip_aggregate(
                t0, x0, t1, x1, cell.start, cell.end
            )
            for got, want in (
                (cell.minimum, minimum),
                (cell.maximum, maximum),
                (cell.integral, area),
                (cell.covered, covered),
            ):
                assert abs(got - want) <= max(abs(got), abs(want)) * tolerance + tolerance, (
                    cell,
                    want,
                )
        del ref  # the reference pass is timed; cells are checked via the clip
    return decode_elapsed, pyramid_elapsed, viewports


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=120_000, help="raw points to compress")
    parser.add_argument("--epsilon", type=float, default=0.4, help="filter precision width")
    parser.add_argument("--sweeps", type=int, default=3, help="rolling sweeps to time")
    parser.add_argument("--viewports", type=int, default=25, help="zoom viewports to time")
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument(
        "--floor", type=float, default=10.0, help="asserted rolling speedup floor"
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="report only; do not enforce the floor"
    )
    args = parser.parse_args(argv)

    root = Path(tempfile.mkdtemp(prefix="bench-rolling-zoom-"))
    try:
        store = build_store(root / "store", args.points, args.epsilon, args.seed)
        entry = store.describe("s")
        blocks = len(entry.blocks)
        assert blocks >= MIN_BLOCKS, f"workload too small: {blocks} blocks < {MIN_BLOCKS}"
        print(
            f"stream: {args.points:,} points -> {entry.recordings:,} recordings "
            f"across {blocks} index blocks"
        )

        decode_r, planner_r, windows = bench_rolling(store, args.sweeps)
        rolling_speedup = decode_r / planner_r if planner_r else float("inf")
        print(
            f"\nrolling sweep ({windows} windows x {args.sweeps} sweeps, step = window/4):\n"
            f"  per-window decode : {decode_r * 1e3:9.1f} ms\n"
            f"  planner           : {planner_r * 1e3:9.1f} ms\n"
            f"  speedup           : {rolling_speedup:9.1f}x  "
            f"(answers match within {TOLERANCE:g})"
        )

        decode_z, pyramid_z, viewports = bench_zoom(store, args.viewports, args.seed)
        zoom_speedup = decode_z / pyramid_z if pyramid_z else float("inf")
        print(
            f"\n{viewports} zoom viewports ({ZOOM_BUDGET}-cell budget):\n"
            f"  decode path : {decode_z * 1e3:9.1f} ms\n"
            f"  pyramid     : {pyramid_z * 1e3:9.1f} ms\n"
            f"  speedup     : {zoom_speedup:9.1f}x  "
            f"(<= 2 blocks decoded per viewport, asserted)"
        )

        path = write_bench_json(
            "rolling_zoom",
            {
                "points": args.points,
                "recordings": entry.recordings,
                "blocks": blocks,
                "rolling_windows": windows,
                "rolling_sweeps": args.sweeps,
                "decode_rolling_seconds": decode_r,
                "planner_rolling_seconds": planner_r,
                "rolling_speedup": rolling_speedup,
                "zoom_viewports": viewports,
                "zoom_budget": ZOOM_BUDGET,
                "decode_zoom_seconds": decode_z,
                "pyramid_zoom_seconds": pyramid_z,
                "zoom_speedup": zoom_speedup,
                "asserted_floor": None if args.no_assert else args.floor,
            },
        )
        print(f"results written to {path}")

        if not args.no_assert and rolling_speedup < args.floor:
            print(f"FAIL: rolling composer is below the {args.floor:g}x speedup floor")
            return 1
        return 0
    finally:
        shutil.rmtree(root, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
