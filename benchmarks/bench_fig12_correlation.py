"""Figure 12 — effect of the correlation between dimensions.

Paper reference points: compression of a 5-dimensional signal grows as its
dimensions become more correlated; slide and swing stay on top; and (§5.4
text) compressing the dimensions together beats independent per-dimension
compression once the correlation is high enough (the paper finds a break-even
around 0.7 for the slide filter).
"""

from repro.evaluation.dimensionality import (
    compression_vs_correlation,
    independent_vs_joint_breakeven,
)
from repro.evaluation.report import render_series

from bench_utils import run_once, scaled


def test_fig12_correlation(benchmark, bench_scale):
    length = scaled(5_000, bench_scale)
    series = run_once(benchmark, compression_vs_correlation, length=length)

    print()
    print(render_series(series))

    for name, values in series.series.items():
        # Full correlation compresses at least as well as near-independence.
        assert values[-1] >= values[0], f"{name}: correlation should help compression"

    slide = series.series["slide"]
    cache = series.series["cache"]
    linear = series.series["linear"]
    for index in range(len(series.x_values)):
        assert slide[index] >= max(cache[index], linear[index])

    # §5.4 break-even analysis: joint compression of a correlated 5-d signal
    # eventually beats independent per-dimension compression.
    analysis = independent_vs_joint_breakeven(length=length)
    print(
        f"independent-equivalent ratio (slide, d=5): {analysis.independent_equivalent:.2f}; "
        f"break-even correlation: {analysis.breakeven_correlation}"
    )
    assert analysis.independent_equivalent < analysis.single_dimension_ratio
    assert analysis.breakeven_correlation is not None
