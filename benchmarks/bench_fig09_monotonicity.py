"""Figure 9 — effect of the degree of monotonicity (random-walk p sweep).

Paper reference points: slide and swing clearly beat cache and linear across
the whole sweep; compression is highest for monotone signals (p = 0) and
decreases as the signal becomes oscillatory (p = 0.5); the improvement of the
slide filter over the cache filter shrinks from roughly 200 % at p = 0 to
roughly 70 % at p = 0.5.
"""

from repro.evaluation.report import render_series
from repro.evaluation.signal_behavior import compression_vs_monotonicity

from bench_utils import run_once, scaled


def test_fig09_monotonicity(benchmark, bench_scale):
    series = run_once(
        benchmark, compression_vs_monotonicity, length=scaled(10_000, bench_scale)
    )

    print()
    print(render_series(series))

    slide = series.series["slide"]
    swing = series.series["swing"]
    cache = series.series["cache"]
    linear = series.series["linear"]

    for index in range(len(series.x_values)):
        assert slide[index] >= swing[index] >= max(cache[index], linear[index]) * 0.95

    # Monotone (p=0) compresses better than oscillating (p=0.5) for the
    # linear-family filters; the cache filter is the least sensitive.
    assert slide[0] > slide[-1]
    assert swing[0] > swing[-1]
    cache_span = max(cache) - min(cache)
    slide_span = max(slide) - min(slide)
    assert cache_span <= slide_span

    # Improvement of slide (best) over cache (worst) shrinks toward p=0.5 and
    # stays in the paper's ballpark (~200% at p=0, ~70% at p=0.5).
    improvement_monotone = slide[0] / cache[0] - 1.0
    improvement_oscillating = slide[-1] / cache[-1] - 1.0
    assert improvement_monotone > improvement_oscillating
    assert improvement_monotone >= 1.0
    assert improvement_oscillating >= 0.3
