"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures: it runs the
corresponding experiment exactly once (timed via ``benchmark.pedantic``) and
prints the same rows/series the paper reports.  Run with::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the printed tables; without it only the timing table appears.)

Workload sizes are scaled by the ``REPRO_BENCH_SCALE`` environment variable
(default 0.5); set it to 1.0 for paper-sized synthetic workloads.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session")
def bench_scale() -> float:
    """Workload scale factor for the synthetic experiments."""
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))
