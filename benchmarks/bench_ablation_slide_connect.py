"""Ablation A3 — slide filter with vs without segment joining (Lemma 4.4).

Joining adjacent segments saves one recording per joined pair; this ablation
quantifies how much of the slide filter's advantage comes from that mechanism
as opposed to its sliding (unanchored) bounds.
"""

from repro.evaluation.ablations import connection_ablation
from repro.evaluation.report import render_series

from bench_utils import run_once


def test_ablation_slide_connections(benchmark):
    series = run_once(benchmark, connection_ablation)

    print()
    print(render_series(series))

    full = series.series["slide"]
    disconnected = series.series["slide-disconnected"]
    fractions = series.series["connected fraction (%)"]

    for index in range(len(series.x_values)):
        assert full[index] >= disconnected[index], "joining segments must never hurt compression"
        assert 0.0 <= fractions[index] <= 100.0
    # Joining must pay off somewhere in the sweep.
    assert any(full[i] > disconnected[i] * 1.02 for i in range(len(full)))
    assert any(fraction > 5.0 for fraction in fractions)
