"""Throughput benchmark: the StreamDB batch path vs. the per-point loop.

Runs every paper filter over a random-walk workload twice — once feeding one
:class:`DataPoint` at a time (the seed implementation's only mode) and once
through the :class:`repro.api.session.StreamDB` session façade, whose
``ingest`` drives the vectorized ``process_batch`` fast path and archives
the recordings into a (temporary) store — and reports points/second plus
the speedup.  Both paths produce bit-identical recordings (enforced by
``tests/test_batch_equivalence.py``; re-checked here on a prefix of the
workload), so the comparison is driver overhead plus the real archival
cost the façade pays.

Usage::

    python benchmarks/bench_pipeline_throughput.py                  # 200k points
    python benchmarks/bench_pipeline_throughput.py --points 1000000
    python benchmarks/bench_pipeline_throughput.py --points 2000 --no-check  # CI smoke run

The headline number (asserted unless ``--no-assert`` is given) is the swing
filter's speedup: the paper's flagship online filter must ingest at least 5×
faster through the batch pipeline than through the per-point loop.  The
slide filter is reported too but not asserted: its inner loop does per-point
convex-hull and tangent work that acceptance-equivalence forbids batching
away, so its speedup is structurally modest.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

import repro
from repro.core.epsilon import epsilon_from_percent
from repro.core.registry import PAPER_FILTERS, create_filter
from repro.data.random_walk import RandomWalkConfig, random_walk

from bench_utils import write_bench_json

#: Precision width as % of the signal range (a mid-range setting of the
#: paper's 1–10 % evaluation sweep).
PRECISION_PERCENT = 5.0


def make_workload(points: int, seed: int = 42):
    config = RandomWalkConfig(
        length=points, decrease_probability=0.5, max_delta=0.5, seed=seed
    )
    return random_walk(config)


def run_per_point(name: str, times, values, epsilon) -> tuple:
    stream_filter = create_filter(name, epsilon)
    started = time.perf_counter()
    for t, v in zip(times, values):
        stream_filter.feed(t, v)
    stream_filter.finish()
    elapsed = time.perf_counter() - started
    return elapsed, stream_filter.recording_count


def run_batched(name: str, times, values, epsilon, chunk_size: int) -> tuple:
    with tempfile.TemporaryDirectory(prefix="bench-pipeline-") as workdir:
        with repro.open(
            Path(workdir) / "store",
            filter=repro.FilterSpec(name, epsilon=epsilon),
        ) as db:
            report = db.ingest("bench", times, values, chunk_size=chunk_size)
    return report.elapsed_seconds, report.recordings


def check_equivalence(times, values, epsilon, chunk_size: int, prefix: int = 20_000) -> None:
    times, values = times[:prefix], values[:prefix]
    for name in PAPER_FILTERS:
        reference = create_filter(name, epsilon)
        for t, v in zip(times, values):
            reference.feed(t, v)
        reference.finish()
        candidate = create_filter(name, epsilon)
        for start in range(0, len(times), chunk_size):
            candidate.process_batch(
                times[start : start + chunk_size], values[start : start + chunk_size]
            )
        candidate.finish()
        assert reference.recording_count == candidate.recording_count, name
        for expected, actual in zip(reference.recordings, candidate.recordings):
            assert actual.time == expected.time and np.array_equal(
                actual.value, expected.value
            ), name


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=200_000, help="workload size")
    parser.add_argument("--chunk-size", type=int, default=4096, help="pipeline chunk size")
    parser.add_argument(
        "--no-check", action="store_true", help="skip the recording-equivalence check"
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="report only; do not enforce the 5x target"
    )
    args = parser.parse_args(argv)

    times, values = make_workload(args.points)
    epsilon = epsilon_from_percent(PRECISION_PERCENT, values)
    print(
        f"workload: random walk, {args.points:,} points, "
        f"epsilon = {epsilon:.4g} ({PRECISION_PERCENT:g}% of range), "
        f"chunk size {args.chunk_size}"
    )

    if not args.no_check:
        check_equivalence(times, values, epsilon, args.chunk_size)
        print("equivalence: batch and per-point recordings identical (checked)")

    print(f"\n{'filter':<8} {'per-point pts/s':>16} {'batch pts/s':>14} {'speedup':>8} {'recordings':>11}")
    speedups = {}
    metrics = {"points": args.points, "chunk_size": args.chunk_size, "filters": {}}
    for name in PAPER_FILTERS:
        per_point_elapsed, per_point_recordings = run_per_point(name, times, values, epsilon)
        batch_elapsed, batch_recordings = run_batched(
            name, times, values, epsilon, args.chunk_size
        )
        assert per_point_recordings == batch_recordings
        per_point_rate = args.points / per_point_elapsed
        batch_rate = args.points / batch_elapsed
        speedups[name] = per_point_elapsed / batch_elapsed
        metrics["filters"][name] = {
            "per_point_points_per_second": per_point_rate,
            "batch_points_per_second": batch_rate,
            "speedup": speedups[name],
            "recordings": batch_recordings,
        }
        print(
            f"{name:<8} {per_point_rate:>16,.0f} {batch_rate:>14,.0f} "
            f"{speedups[name]:>7.1f}x {batch_recordings:>11,}"
        )

    print(f"\nheadline (swing): {speedups['swing']:.1f}x")
    print(f"results written to {write_bench_json('pipeline_throughput', metrics)}")
    if not args.no_assert and args.points >= 100_000 and speedups["swing"] < 5.0:
        print("FAIL: swing batch ingestion is below the 5x throughput target")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
