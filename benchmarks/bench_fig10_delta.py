"""Figure 10 — effect of the magnitude of change per data point.

Paper reference points: compression decreases as the maximum delta grows;
slide and swing consistently beat cache and linear; when the maximum delta is
below the precision width (x = 10 %), the cache filter beats the linear
filter; the slide filter's advantage over the linear filter shrinks from
roughly 266 % at x = 10 % to roughly 20 % at x = 10 000 %.
"""

from repro.evaluation.report import render_series
from repro.evaluation.signal_behavior import compression_vs_delta

from bench_utils import run_once, scaled


def test_fig10_magnitude_of_change(benchmark, bench_scale):
    series = run_once(benchmark, compression_vs_delta, length=scaled(10_000, bench_scale))

    print()
    print(render_series(series))

    slide = series.series["slide"]
    swing = series.series["swing"]
    cache = series.series["cache"]
    linear = series.series["linear"]

    # Compression decreases as the step magnitude grows.
    for name in ("cache", "linear", "swing", "slide"):
        values = series.series[name]
        assert values[0] >= values[-1]

    # Slide and swing dominate the baselines everywhere.
    for index in range(len(series.x_values)):
        assert slide[index] >= max(cache[index], linear[index])
        assert swing[index] >= min(cache[index], linear[index])

    # Small deltas (below the precision width) favour the cache filter over
    # the linear filter (paper's observation at x = 10 %).
    assert cache[0] >= linear[0]

    # The slide filter's edge over the linear filter shrinks with the delta
    # but never disappears.
    first_gain = slide[0] / linear[0] - 1.0
    last_gain = slide[-1] / linear[-1] - 1.0
    assert first_gain > last_gain
    assert last_gain >= 0.05
