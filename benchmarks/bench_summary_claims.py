"""Headline claims of the paper's abstract / introduction.

Aggregates the compression sweeps of Figures 7 and 9–12 and verifies:

1. the slide filter achieves the highest compression ratio in (nearly) all
   configurations — the paper says it "consistently dominates all other
   filters";
2. the swing filter generally outperforms the cache and linear baselines;
3. the slide filter improves over the best previous technique by a large
   factor in at least one configuration (the paper quotes "up to twofold"
   against the best of the earlier filters on synthetic data and much more on
   the SST signal).
"""

from repro.evaluation.report import render_table
from repro.evaluation.summary import headline_claims

from bench_utils import run_once


def test_headline_claims(benchmark):
    summary = run_once(benchmark, headline_claims, fast=True)

    print()
    print("Headline claims (aggregated over Figures 7, 9, 10, 11, 12):")
    print(render_table(summary.as_rows()))

    by_claim = {check.claim: check for check in summary.checks}
    slide_best = by_claim["slide filter achieves the highest compression ratio"]
    swing_beats = by_claim["swing filter outperforms cache and linear baselines"]
    slide_beats_swing = by_claim["slide filter outperforms the swing filter"]

    assert summary.configurations >= 20
    assert slide_best.holds_mostly, "slide should dominate in >=80% of configurations"
    assert swing_beats.fraction >= 0.7, "swing should beat the baselines in most configurations"
    assert slide_beats_swing.fraction >= 0.9
    assert summary.max_slide_improvement_over_baselines >= 1.8, (
        "the paper's 'up to twofold improvement' headline should be visible"
    )
