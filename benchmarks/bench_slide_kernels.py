"""Slide kernel benchmark: array-native batch path vs the per-point loop.

The slide filter is the paper's flagship contribution, and historically the
one hot path batch ingestion barely helped (~1-2x).  This benchmark pins the
speedup of the array-native kernels (PR 4): the event-driven
``process_batch`` with its float-native scalar core, deferred bulk convex
hull insertion (:meth:`IncrementalConvexHull.add_many`) and O(log m_H)
tangent binary searches, against the per-point ``feed()`` reference.

Workloads (200k points each by default):

* **smooth** — a drifting trend plus a slow seasonal component with sensor
  noise well inside the precision width (ε = 5 % of range ≈ 10σ): the
  filter's designed-for regime, long filtering intervals, mostly silent
  points absorbed in vectorized bulk.  Floor: ≥ 8x.
* **noisy** — the throughput benchmark's random walk at ε = 10 % of range
  (top of the paper's 1-10 % sweep): frequent bound-update events exercise
  the scalar core and tangent searches.  Floor: ≥ 4x.

Both runs assert bit-identical recordings between ``feed()`` and the batch
path.  A hull microbenchmark also pins ``add_many`` against the per-point
``add`` loop on 100k points (floor: ≥ 5x, identical chains).

The floors are waived automatically on starved runners (fewer than 2 CPUs
available — a preempted single-core container measures the scheduler, not
the kernels), or with ``--no-assert``.

Usage::

    python benchmarks/bench_slide_kernels.py                  # 200k points
    python benchmarks/bench_slide_kernels.py --points 40000 --smooth-floor 6 --noisy-floor 3
"""

from __future__ import annotations

import argparse
import os
import sys
import time

import numpy as np

from repro.core.epsilon import epsilon_from_percent
from repro.core.slide import SlideFilter
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.geometry.hull import IncrementalConvexHull

from bench_utils import write_bench_json

#: Chunk size of the batch runs (the pipeline default is 4096; larger chunks
#: amortize the probe windows better on long silent stretches).
CHUNK_SIZE = 16384


# --------------------------------------------------------------------------- #
# Workloads
# --------------------------------------------------------------------------- #
def smooth_workload(points: int, seed: int = 9):
    """Drifting trend + slow seasonal + mild sensor noise (ε ≈ 10σ).

    The drift total and seasonal period scale with ``points`` so a smoke run
    keeps the same interval structure (and regime) as the full 200k run.
    """
    rng = np.random.default_rng(seed)
    times = np.arange(float(points))
    values = (
        (400.0 / points) * times
        + 8.0 * np.sin(times / (points / 13.0))
        + rng.normal(0.0, 2.5, points)
    )
    return times, values, epsilon_from_percent(5.0, values)


def noisy_workload(points: int, seed: int = 42):
    """The throughput benchmark's random walk, ε at the top of the sweep."""
    times, values = random_walk(
        RandomWalkConfig(length=points, decrease_probability=0.5, max_delta=0.5, seed=seed)
    )
    return times, values, epsilon_from_percent(10.0, values)


# --------------------------------------------------------------------------- #
# Measurement
# --------------------------------------------------------------------------- #
def recording_tuples(stream_filter):
    return [
        (r.time, tuple(float(v) for v in r.value), r.kind)
        for r in stream_filter.recordings
    ]


def run_pair(times, values, epsilon, chunk_size: int):
    """Per-point vs batch on one workload; asserts identical recordings."""
    per_point = SlideFilter(epsilon)
    started = time.perf_counter()
    for t, v in zip(times, values):
        per_point.feed(t, v)
    per_point.finish()
    per_point_elapsed = time.perf_counter() - started

    batch = SlideFilter(epsilon)
    started = time.perf_counter()
    for start in range(0, len(times), chunk_size):
        batch.process_batch(
            times[start : start + chunk_size], values[start : start + chunk_size]
        )
    batch.finish()
    batch_elapsed = time.perf_counter() - started

    if recording_tuples(per_point) != recording_tuples(batch):
        raise AssertionError("batch recordings differ from the per-point path")
    return per_point_elapsed, batch_elapsed, batch.recording_count


def run_hull_microbench(points: int, seed: int = 3):
    """Per-point ``add`` loop vs one ``add_many`` on a random-walk signal."""
    rng = np.random.default_rng(seed)
    times = np.cumsum(rng.uniform(0.5, 1.5, points))
    values = np.cumsum(rng.normal(0.0, 0.3, points))

    scalar_hull = IncrementalConvexHull()
    add = scalar_hull.add
    time_list = times.tolist()
    value_list = values.tolist()
    started = time.perf_counter()
    for index in range(points):
        add(time_list[index], value_list[index])
    scalar_elapsed = time.perf_counter() - started

    bulk_hull = IncrementalConvexHull()
    started = time.perf_counter()
    bulk_hull.add_many(times, values)
    bulk_hull.vertex_count  # force the deferred merge so it is timed
    bulk_elapsed = time.perf_counter() - started

    if scalar_hull.vertices() != bulk_hull.vertices():
        raise AssertionError("add_many produced different hull vertices than add()")
    return scalar_elapsed, bulk_elapsed, bulk_hull.vertex_count


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=200_000, help="workload size")
    parser.add_argument("--chunk-size", type=int, default=CHUNK_SIZE)
    parser.add_argument(
        "--hull-points", type=int, default=100_000, help="hull microbenchmark size"
    )
    parser.add_argument(
        "--smooth-floor", type=float, default=8.0, help="minimum smooth-signal speedup"
    )
    parser.add_argument(
        "--noisy-floor", type=float, default=4.0, help="minimum noisy-signal speedup"
    )
    parser.add_argument(
        "--hull-floor", type=float, default=5.0, help="minimum add_many speedup"
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="report without asserting the floors"
    )
    args = parser.parse_args(argv)

    cores = (
        len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else os.cpu_count()
    )
    print(
        f"workloads: {args.points:,} points, chunk size {args.chunk_size}, "
        f"{cores} core(s) available"
    )

    metrics = {"points": args.points, "chunk_size": args.chunk_size}
    speedups = {}
    print(f"\n{'workload':<8} {'per-point pts/s':>16} {'batch pts/s':>14} {'speedup':>8} {'recordings':>11}")
    for name, workload in (("smooth", smooth_workload), ("noisy", noisy_workload)):
        times, values, epsilon = workload(args.points)
        per_point, batch, recordings = run_pair(times, values, epsilon, args.chunk_size)
        speedups[name] = per_point / batch
        metrics[name] = {
            "per_point_seconds": per_point,
            "batch_seconds": batch,
            "speedup": speedups[name],
            "recordings": recordings,
            "epsilon": float(epsilon),
        }
        print(
            f"{name:<8} {args.points / per_point:>16,.0f} {args.points / batch:>14,.0f} "
            f"{speedups[name]:>7.1f}x {recordings:>11,}"
        )
    print("recordings bit-identical across per-point and batch paths: yes")

    scalar, bulk, vertex_count = run_hull_microbench(args.hull_points)
    hull_speedup = scalar / bulk
    metrics["hull_add_many"] = {
        "points": args.hull_points,
        "per_point_seconds": scalar,
        "bulk_seconds": bulk,
        "speedup": hull_speedup,
        "vertex_count": vertex_count,
    }
    print(
        f"\nhull add_many on {args.hull_points:,} points: "
        f"{scalar * 1e3:.1f} ms per-point vs {bulk * 1e3:.1f} ms bulk "
        f"({hull_speedup:.0f}x, {vertex_count} vertices, identical chains)"
    )

    path = write_bench_json("slide_kernels", metrics)
    print(f"results written to {path}")

    if args.no_assert:
        return 0
    if cores is not None and cores < 2:
        print("floors waived: fewer than 2 cores available, timings measure the scheduler")
        return 0
    failed = False
    for name, floor in (
        ("smooth", args.smooth_floor),
        ("noisy", args.noisy_floor),
    ):
        if speedups[name] < floor:
            print(f"FAIL: {name} speedup {speedups[name]:.1f}x below the {floor:.1f}x floor")
            failed = True
    if hull_speedup < args.hull_floor:
        print(
            f"FAIL: hull add_many speedup {hull_speedup:.1f}x below the "
            f"{args.hull_floor:.1f}x floor"
        )
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
