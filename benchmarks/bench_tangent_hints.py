"""Micro-benchmark: warm-started vs cold tangent binary searches.

The slide filter's bound updates run an O(log m_H) tangent binary search
over a convex hull chain (``repro.geometry.tangents``).  Between
consecutive updates the extremal support vertex rarely moves, so the
``*_tangent_search`` variants accept the previous hit index as a ``hint``
and resolve an unchanged (or adjacent) support in O(1) candidate-slope
evaluations.  This benchmark measures that win on the adversarial workload
where the search depth actually matters: a strictly convex chain in which
*every* point is a hull vertex, probed by a slowly drifting new point so
the tangent index creeps along the chain exactly like a dense stretch of
slide-filter update events.

Every warm answer is asserted identical (line and support index) to the
cold answer, so the hint path is exercised for correctness as well as
speed.

Usage::

    python benchmarks/bench_tangent_hints.py                # full workload
    python benchmarks/bench_tangent_hints.py --chain 4000 --queries 20000
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.geometry.hull import IncrementalConvexHull
from repro.geometry.tangents import (
    max_slope_lower_tangent_search,
    min_slope_upper_tangent_search,
)

from bench_utils import write_bench_json

EPSILON = 0.05


def build_chains(chain_points: int):
    """Strictly convex data: every point lands on the hull chains."""
    times = np.arange(float(chain_points))
    span = float(chain_points)
    concave = -((times - 0.35 * span) ** 2) / span  # upper chain keeps all points
    convex = ((times - 0.65 * span) ** 2) / span  # lower chain keeps all points
    upper_hull = IncrementalConvexHull()
    upper_hull.add_many(times, concave)
    lower_hull = IncrementalConvexHull()
    lower_hull.add_many(times, convex)
    return upper_hull.upper_chain(), lower_hull.lower_chain()


def build_queries(chain_points: int, queries: int, seed: int):
    """New points whose tangent support drifts slowly along the chain."""
    rng = np.random.default_rng(seed)
    span = float(chain_points)
    t_new = span + 1.0 + np.cumsum(rng.uniform(0.01, 0.05, queries))
    # A slow slope sweep moves the extremal support vertex gradually from
    # one end of the chain toward the other — consecutive queries mostly
    # share their support index, the regime the hints are built for.
    sweep = np.linspace(-0.9, 0.9, queries) + rng.normal(0.0, 0.01, queries)
    x_new = sweep * t_new
    return t_new, x_new


def run_pass(search, chain, t_new, x_new, warm: bool):
    """Time one full query sweep; returns (elapsed_seconds, results)."""
    chain_t, chain_x = chain
    results = []
    hint = None
    started = time.perf_counter()
    for t, x in zip(t_new, x_new):
        line, index = search(chain_t, chain_x, t, x, EPSILON, hint=hint)
        if warm:
            hint = index
        results.append((line, index))
    return time.perf_counter() - started, results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--chain", type=int, default=30_000, help="hull chain vertices")
    parser.add_argument("--queries", type=int, default=60_000, help="tangent searches per pass")
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--floor", type=float, default=1.1, help="asserted warm/cold speedup floor"
    )
    parser.add_argument(
        "--no-assert", action="store_true", help="report only; do not enforce the floor"
    )
    args = parser.parse_args(argv)

    upper_chain, lower_chain = build_chains(args.chain)
    t_new, x_new = build_queries(args.chain, args.queries, args.seed)
    print(
        f"chains: {upper_chain[0].shape[0]:,} upper / {lower_chain[0].shape[0]:,} lower "
        f"vertices; {args.queries:,} drifting tangent queries per pass"
    )

    metrics = {"chain": args.chain, "queries": args.queries}
    speedups = []
    for label, search, chain in (
        ("upper", min_slope_upper_tangent_search, upper_chain),
        ("lower", max_slope_lower_tangent_search, lower_chain),
    ):
        cold_elapsed, cold = run_pass(search, chain, t_new, x_new, warm=False)
        warm_elapsed, warm = run_pass(search, chain, t_new, x_new, warm=True)
        for position, ((cold_line, cold_index), (warm_line, warm_index)) in enumerate(
            zip(cold, warm)
        ):
            assert cold_index == warm_index, (label, position, cold_index, warm_index)
            assert cold_line.slope == warm_line.slope, (label, position)
            assert cold_line.intercept == warm_line.intercept, (label, position)
        indexes = {index for _, index in cold}
        assert len(indexes) > 10, f"degenerate workload: support never moves ({indexes})"
        speedup = cold_elapsed / warm_elapsed if warm_elapsed else float("inf")
        speedups.append(speedup)
        print(
            f"  {label} tangent: cold {cold_elapsed * 1e3:8.1f} ms  "
            f"warm {warm_elapsed * 1e3:8.1f} ms  speedup {speedup:5.2f}x  "
            f"({len(indexes)} distinct support vertices)"
        )
        metrics[f"{label}_cold_seconds"] = cold_elapsed
        metrics[f"{label}_warm_seconds"] = warm_elapsed
        metrics[f"{label}_speedup"] = speedup

    metrics["asserted_floor"] = None if args.no_assert else args.floor
    path = write_bench_json("tangent_hints", metrics)
    print(f"results written to {path}")

    if not args.no_assert and min(speedups) < args.floor:
        print(f"FAIL: warm-started tangent search below the {args.floor:g}x floor")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
