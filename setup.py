"""Setuptools shim enabling legacy editable installs (offline environments)."""

from setuptools import setup

setup()
