"""Quickstart: the StreamDB session, then the filter layer underneath.

Run with::

    python examples/quickstart.py

The script first runs the paper's whole flow — compress, archive, query —
through one ``repro.open(...)`` session.  It then drops down a layer:
compresses a small random-walk signal with the four filters compared in the
paper (cache, linear, swing, slide), reconstructs the receiver-side
approximation and prints the compression ratio and error of each filter,
ending with the incremental (point-by-point) API.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro import PAPER_FILTERS, SlideFilter, create_filter, reconstruct
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.metrics.error import error_profile


def session_demo() -> None:
    """Compress, archive and query one stream through the session façade."""
    times, values = random_walk(
        RandomWalkConfig(length=5_000, decrease_probability=0.5, max_delta=0.5, seed=3)
    )
    with tempfile.TemporaryDirectory() as workdir:
        with repro.open(
            Path(workdir) / "archive",
            filter=repro.FilterSpec("slide", epsilon_percent=2),
        ) as db:
            report = db.ingest("walk", times, values)
            aggregate = db.aggregate("walk", float(times[500]), float(times[-500]))
            print("StreamDB session demo (slide filter, epsilon = 2% of range):")
            print(f"  points ingested    : {report.points}")
            print(f"  recordings stored  : {report.recordings}")
            print(f"  compression ratio  : {report.compression_ratio:.2f}")
            print(f"  range mean/min/max : {aggregate.mean:.3f} / "
                  f"{aggregate.minimum:.3f} / {aggregate.maximum:.3f}")
    print()


def batch_demo() -> None:
    """Compress a whole in-memory signal with each of the paper's filters."""
    times, values = random_walk(
        RandomWalkConfig(length=2_000, decrease_probability=0.4, max_delta=1.0, seed=7)
    )
    epsilon = 0.5  # absolute precision width (same units as the signal)

    print(f"Signal: {len(times)} points, precision width = {epsilon}")
    print(f"{'filter':<10} {'recordings':>10} {'ratio':>8} {'mean err':>9} {'max err':>9}")
    for name in PAPER_FILTERS:
        stream_filter = create_filter(name, epsilon)
        result = stream_filter.process(zip(times, values))
        approximation = reconstruct(result)
        profile = error_profile(approximation, times, values)
        print(
            f"{name:<10} {result.recording_count:>10d} {result.compression_ratio:>8.2f} "
            f"{profile.mean_absolute:>9.3f} {profile.max_absolute:>9.3f}"
        )
    print()


def streaming_demo() -> None:
    """Feed points one by one, transmitting recordings as they are produced."""
    epsilon = 0.5
    slide = SlideFilter(epsilon)
    rng = np.random.default_rng(11)

    print("Streaming demo (slide filter): '.' = filtered out, 'R' = recording(s) emitted")
    observed = []
    value = 0.0
    transmitted = 0
    for t in range(200):
        value += rng.uniform(-1.0, 1.0)
        observed.append((float(t), value))
        recordings = slide.feed(float(t), value)
        transmitted += len(recordings)
        print("R" if recordings else ".", end="")
    transmitted += len(slide.finish())
    print()

    approximation = reconstruct(slide.result())
    print(
        f"points = 200, recordings transmitted = {transmitted}, "
        f"compression ratio = {200 / transmitted:.2f}"
    )
    print(
        f"max reconstruction error = {approximation.max_absolute_error(observed):.3f} "
        f"(guaranteed <= {epsilon})"
    )


if __name__ == "__main__":
    session_demo()
    batch_demo()
    streaming_demo()
