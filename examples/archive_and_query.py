"""Archive-and-query scenario through the ``StreamDB`` session façade.

The paper's introduction motivates storing the *recordings* (not the raw
points) in a repository for later offline analysis.  This example runs the
full loop through one ``repro.open(...)`` session:

1. two buoys' temperature series are bulk-ingested with the slide filter;
2. a third buoy streams in **live** — and is queried *mid-flight*: the
   session merges the archived recordings with the filter's in-flight
   segment, so the answer is exactly what a flush-then-read would give;
3. the store is re-opened (as an analyst would later) and the compressed
   series are queried directly — daily aggregates, threshold crossings and
   a resampled export — without ever materializing the raw points again;
4. an adaptive aggregate monitor (related work [21]) watches the SUM of the
   same streams under a single precision budget.

Run with::

    python examples/archive_and_query.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

import repro
from repro.core.epsilon import epsilon_from_percent
from repro.data.sst import sea_surface_temperature
from repro.extensions.adaptive import AdaptiveAggregateMonitor


def build_archive(directory: Path) -> tuple:
    """Compress three buoys' temperature series into the archive."""
    signals = {}
    for buoy in range(3):
        times, values = sea_surface_temperature(seed=2009 + buoy)
        signals[f"buoy-{buoy}"] = (times, values)
    epsilon = epsilon_from_percent(1.0, signals["buoy-0"][1])

    with repro.open(directory, filter=repro.FilterSpec("slide", epsilon=epsilon)) as db:
        # Bulk ingestion for the first two buoys.
        for name in ("buoy-0", "buoy-1"):
            times, values = signals[name]
            db.ingest(name, times, values)

        # The third buoy is still transmitting: feed half of it live...
        times, values = signals["buoy-2"]
        half = len(times) // 2
        db.append("buoy-2", times[:half], values[:half])

        # ...and query it mid-flight.  The session merges the archived
        # recordings with the live filter's in-flight segment.
        live = db.aggregate("buoy-2", float(times[0]), float(times[half - 1]))
        print("Querying buoy-2 while it is still being compressed:")
        print(f"  mean so far        : {live.mean:.2f} degC (within epsilon of the signal)")
        print(f"  live streams       : {db.live_streams()}")

        # The rest of the stream arrives; leaving the session seals it.
        db.append("buoy-2", times[half:], values[half:])

        points = sum(len(s[0]) for s in signals.values())
        recordings = sum(len(db.read(name)) for name in db.streams())
        print("Archived fleet:")
        print(f"  streams            : {len(db.streams())}")
        print(f"  observations       : {points}")
        print(f"  recordings         : {recordings} (live in-flight included)")
        print(f"  compression ratio  : {points / recordings:.2f}")
        print(f"  archive size       : {db.store.total_bytes()} bytes on disk")
        print()
    return signals, epsilon


def analyse_archive(directory: Path, signals, epsilon: float) -> None:
    """Re-open the archive and answer questions from the compressed data."""
    with repro.open(directory, create=False) as db:
        print(f"Catalog: {', '.join(db.streams())}")

        day = 24 * 60.0
        times, values = signals["buoy-0"]
        daily = db.aggregate("buoy-0", window=day)
        print("Daily mean temperature (buoy-0), computed from the compressed segments:")
        for index, window in enumerate(daily[:5]):
            print(f"  day {index + 1}: mean={window.mean:.2f} degC  "
                  f"min={window.minimum:.2f}  max={window.maximum:.2f}")

        threshold = float(np.percentile(values, 90))
        crossings = db.crossings("buoy-0", threshold)
        print(f"Crossings of the 90th-percentile temperature "
              f"({threshold:.2f} degC): {len(crossings)}")

        overall = db.aggregate("buoy-0")
        true_mean = float(values.mean())
        print(f"Overall mean from segments: {overall.mean:.3f} degC "
              f"(true mean {true_mean:.3f}, epsilon {epsilon:.3f})")

        grid_times, grid_values = db.resample("buoy-0", step=60.0)
        print(f"Hourly resampled export: {len(grid_times)} samples, "
              f"first={grid_values[0, 0]:.2f} degC")
        print()


def monitor_aggregate(signals) -> None:
    """Watch the SUM of the three buoys within one aggregate precision budget."""
    names = sorted(signals)
    monitor = AdaptiveAggregateMonitor(names, total_epsilon=0.3, adjustment_interval=100)
    length = len(signals[names[0]][1])
    for index in range(length):
        for name in names:
            monitor.observe(name, signals[name][1][index])
    report = monitor.close()
    print("Adaptive SUM monitoring (Olston-style, total budget 0.3 degC):")
    print(f"  observations       : {report.points}")
    print(f"  values transmitted : {report.messages}")
    print(f"  compression ratio  : {report.compression_ratio:.2f}")
    print(f"  max aggregate error: {report.max_aggregate_error:.3f} (budget 0.3)")
    print(f"  final allocation   : " + ", ".join(
        f"{name}={width:.3f}" for name, width in sorted(report.allocations.items())
    ))


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        directory = Path(workdir) / "archive"
        signals, epsilon = build_archive(directory)
        analyse_archive(directory, signals, epsilon)
        monitor_aggregate(signals)


if __name__ == "__main__":
    main()
