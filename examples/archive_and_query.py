"""Archive-and-query scenario: store compressed streams, query them later.

The paper's introduction motivates storing the *recordings* (not the raw
points) in a repository for later offline analysis.  This example runs the
full loop with the library's storage and query subsystems:

1. a fleet of monitored streams is compressed online with the slide filter
   and archived into a file-backed :class:`SegmentStore`;
2. the store is re-opened (as an analyst would later) and the compressed
   series are queried directly — daily aggregates, threshold crossings and a
   resampled export — without ever materializing the raw points again;
3. an adaptive aggregate monitor (related work [21]) watches the SUM of the
   same streams under a single precision budget.

Run with::

    python examples/archive_and_query.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.core.epsilon import epsilon_from_percent
from repro.data.sst import sea_surface_temperature
from repro.extensions.adaptive import AdaptiveAggregateMonitor
from repro.queries.aggregates import range_aggregate, threshold_crossings, window_aggregates
from repro.storage.segment_store import SegmentStore
from repro.streams.multiplex import StreamSet


def build_archive(directory: Path) -> tuple:
    """Compress three buoys' temperature series into the archive."""
    store = SegmentStore(directory)
    signals = {}
    for buoy in range(3):
        times, values = sea_surface_temperature(seed=2009 + buoy)
        signals[f"buoy-{buoy}"] = (times, values)
    epsilon = epsilon_from_percent(1.0, signals["buoy-0"][1])

    fleet = StreamSet("slide", epsilon=epsilon, store=store)
    for name, (times, values) in signals.items():
        for t, v in zip(times, values):
            fleet.observe(name, t, v)
    report = fleet.close()

    print("Archived fleet:")
    print(f"  streams            : {report.streams}")
    print(f"  observations       : {report.points}")
    print(f"  recordings stored  : {report.recordings}")
    print(f"  compression ratio  : {report.compression_ratio:.2f}")
    print(f"  archive size       : {store.total_bytes()} bytes on disk")
    print()
    return signals, epsilon


def analyse_archive(directory: Path, signals, epsilon: float) -> None:
    """Re-open the archive and answer questions from the compressed data."""
    store = SegmentStore(directory)
    print(f"Catalog: {', '.join(store.stream_names())}")
    approximation = store.reconstruct("buoy-0")

    day = 24 * 60.0
    times, values = signals["buoy-0"]
    daily = window_aggregates(approximation, float(times[0]), float(times[-1]), day)
    print("Daily mean temperature (buoy-0), computed from the compressed segments:")
    for index, window in enumerate(daily[:5]):
        print(f"  day {index + 1}: mean={window.mean:.2f} degC  "
              f"min={window.minimum:.2f}  max={window.maximum:.2f}")

    threshold = float(np.percentile(values, 90))
    crossings = threshold_crossings(approximation, threshold)
    print(f"Crossings of the 90th-percentile temperature ({threshold:.2f} degC): {len(crossings)}")

    overall = range_aggregate(approximation, float(times[0]), float(times[-1]))
    true_mean = float(values.mean())
    print(f"Overall mean from segments: {overall.mean:.3f} degC "
          f"(true mean {true_mean:.3f}, epsilon {epsilon:.3f})")
    print()


def monitor_aggregate(signals) -> None:
    """Watch the SUM of the three buoys within one aggregate precision budget."""
    names = sorted(signals)
    monitor = AdaptiveAggregateMonitor(names, total_epsilon=0.3, adjustment_interval=100)
    length = len(signals[names[0]][1])
    for index in range(length):
        for name in names:
            monitor.observe(name, signals[name][1][index])
    report = monitor.close()
    print("Adaptive SUM monitoring (Olston-style, total budget 0.3 degC):")
    print(f"  observations       : {report.points}")
    print(f"  values transmitted : {report.messages}")
    print(f"  compression ratio  : {report.compression_ratio:.2f}")
    print(f"  max aggregate error: {report.max_aggregate_error:.3f} (budget 0.3)")
    print(f"  final allocation   : " + ", ".join(
        f"{name}={width:.3f}" for name, width in sorted(report.allocations.items())
    ))


def main() -> None:
    with tempfile.TemporaryDirectory() as workdir:
        directory = Path(workdir) / "archive"
        signals, epsilon = build_archive(directory)
        analyse_archive(directory, signals, epsilon)
        monitor_aggregate(signals)


if __name__ == "__main__":
    main()
