"""Financial-stream scenario: correlated multi-dimensional compression.

Online stock quotes are one of the paper's examples of applications that
tolerate a bounded error and a bounded lag (§1), and §5.4 shows that highly
correlated dimensions are better compressed *jointly* than independently.
This example builds a 5-dimensional stream of correlated "prices" (think one
sector's tickers), compresses it both ways with the slide filter, and applies
the paper's ``(d + 1) / 2d`` accounting to decide which strategy wins.

Run with::

    python examples/stock_ticks.py
"""

from __future__ import annotations

import numpy as np

from repro import SlideFilter, reconstruct
from repro.data.correlated import CorrelatedWalkConfig, correlated_random_walk
from repro.metrics.compression import independent_equivalent_ratio


def make_prices(correlation: float, length: int = 5_000, dimensions: int = 5):
    """Correlated geometric-ish price paths sharing a sector-wide factor."""
    times, walk = correlated_random_walk(
        CorrelatedWalkConfig(
            length=length,
            dimensions=dimensions,
            correlation=correlation,
            decrease_probability=0.5,
            max_delta=0.4,
            initial_value=100.0,
            seed=2026,
        )
    )
    return times, walk


def joint_compression(times, prices, epsilon: float) -> float:
    """Compress all tickers together as one multi-dimensional signal."""
    result = SlideFilter(epsilon).process(zip(times, prices))
    approximation = reconstruct(result)
    assert approximation.within_bound(list(zip(times, prices)), epsilon)
    return result.compression_ratio


def independent_compression(times, prices, epsilon: float) -> float:
    """Compress each ticker separately and apply the paper's correction."""
    dimensions = prices.shape[1]
    ratios = []
    for column in range(dimensions):
        result = SlideFilter(epsilon).process(zip(times, prices[:, column]))
        ratios.append(result.compression_ratio)
    per_dimension = float(np.mean(ratios))
    return independent_equivalent_ratio(per_dimension, dimensions)


def main() -> None:
    epsilon = 0.5  # half a currency unit per ticker
    print("5 correlated tickers, 5000 ticks each, epsilon = 0.5")
    print()
    print(f"{'correlation':>11} | {'joint ratio':>11} | {'independent (corrected)':>24} | winner")
    print("-" * 70)
    for correlation in (0.2, 0.5, 0.8, 0.95):
        times, prices = make_prices(correlation)
        joint = joint_compression(times, prices, epsilon)
        independent = independent_compression(times, prices, epsilon)
        winner = "joint" if joint > independent else "independent"
        print(f"{correlation:>11.2f} | {joint:>11.2f} | {independent:>24.2f} | {winner}")
    print()
    print(
        "Highly correlated tickers are better compressed together, exactly as "
        "the paper's Section 5.4 break-even analysis predicts."
    )


if __name__ == "__main__":
    main()
