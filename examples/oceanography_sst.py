"""Oceanography scenario: the paper's headline experiment end-to-end.

Reproduces §5.2 of the paper on the sea-surface-temperature workload: for a
sweep of precision widths (expressed as a percentage of the signal range) it
reports the compression ratio and average error of the cache, linear, swing
and slide filters, and then zooms into a single configuration to show the
segments the slide filter actually produced.

Run with::

    python examples/oceanography_sst.py
"""

from __future__ import annotations

from repro import SlideFilter, reconstruct
from repro.core.epsilon import epsilon_from_percent
from repro.data.sst import sea_surface_temperature
from repro.evaluation.precision_sweep import precision_sweep
from repro.evaluation.report import render_series


def precision_study() -> None:
    """Figures 7 and 8: compression and error vs the precision width."""
    compression, error = precision_sweep()
    print(render_series(compression))
    print()
    print(render_series(error))
    print()


def inspect_slide_segments(precision_percent: float = 3.16) -> None:
    """Show the piece-wise linear description transmitted by the slide filter."""
    times, values = sea_surface_temperature()
    epsilon = epsilon_from_percent(precision_percent, values)
    result = SlideFilter(epsilon).process(zip(times, values))
    approximation = reconstruct(result)

    print(
        f"Slide filter at a precision width of {precision_percent}% of the range "
        f"(ε = {epsilon:.3f} °C):"
    )
    print(f"  data points        : {result.points_processed}")
    print(f"  recordings         : {result.recording_count}")
    print(f"  compression ratio  : {result.compression_ratio:.2f}")
    print(f"  line segments      : {approximation.segment_count}")
    print(f"  joined segments    : {approximation.connected_count()}")
    print(f"  max error          : {approximation.max_absolute_error(zip(times, values)):.3f} °C")
    print()
    print("First ten transmitted segments (start → end):")
    for segment in approximation.segments[:10]:
        print(
            f"  t=[{segment.start_time:7.0f}, {segment.end_time:7.0f}] min  "
            f"x=[{segment.start_value[0]:6.2f}, {segment.end_value[0]:6.2f}] °C  "
            f"{'(joined)' if segment.connected_to_previous else ''}"
        )


if __name__ == "__main__":
    precision_study()
    inspect_slide_segments()
