"""Sensor-network scenario: many transmitters, one receiver, bounded lag.

The paper's motivating application (§1) is continuous monitoring where the
sensors' battery life depends on how much data they transmit.  This example
simulates a small sensor field: every sensor runs its own swing or slide
filter as a transmitter, the receiver reconstructs each signal, and the
report shows the transmission savings, the worst-case reconstruction error
and the effect of the ``m_max_lag`` bound on the receiver's staleness.

Run with::

    python examples/sensor_network.py
"""

from __future__ import annotations

import numpy as np

from repro.core.registry import create_filter
from repro.data.random_walk import RandomWalkConfig, random_walk
from repro.streams.pipeline import MonitoringPipeline
from repro.streams.source import ArraySource


def simulate_sensor(sensor_id: int, length: int = 4_000) -> ArraySource:
    """One sensor's measurements: a slow drift plus sensor-specific noise."""
    times, drift = random_walk(
        RandomWalkConfig(
            length=length,
            decrease_probability=0.5,
            max_delta=0.05,
            initial_value=20.0 + sensor_id,
            seed=100 + sensor_id,
        )
    )
    rng = np.random.default_rng(200 + sensor_id)
    daily = 0.8 * np.sin(2.0 * np.pi * times / 1_440.0 + sensor_id)
    noise = rng.normal(0.0, 0.02, length)
    return ArraySource(times, drift + daily + noise)


def run_field(filter_name: str, epsilon: float, max_lag: int = None, sensors: int = 8) -> None:
    """Run the whole sensor field through one filter configuration."""
    total_points = 0
    total_messages = 0
    total_bytes = 0
    worst_error = 0.0
    worst_lag = 0
    for sensor_id in range(sensors):
        source = simulate_sensor(sensor_id)
        kwargs = {"max_lag": max_lag} if max_lag is not None else {}
        pipeline = MonitoringPipeline(create_filter(filter_name, epsilon, **kwargs))
        report = pipeline.run(source)
        total_points += report.points
        total_messages += report.messages_sent
        total_bytes += report.bytes_sent
        worst_error = max(worst_error, report.max_absolute_error)
        worst_lag = max(worst_lag, report.max_lag)

    lag_label = max_lag if max_lag is not None else "unbounded"
    print(
        f"{filter_name:>6s}  max_lag={lag_label!s:>9}  "
        f"messages={total_messages:6d}/{total_points}  "
        f"ratio={total_points / total_messages:6.2f}  "
        f"bytes={total_bytes:8d}  "
        f"worst error={worst_error:.3f}  worst lag={worst_lag:4d} points"
    )


def main() -> None:
    epsilon = 0.25  # degrees: the quality the monitoring application needs
    print("Sensor field: 8 sensors x 4000 samples, epsilon = 0.25")
    print()
    for filter_name in ("cache", "linear", "swing", "slide"):
        run_field(filter_name, epsilon)
    print()
    print("Effect of the transmitter lag bound (slide filter):")
    for max_lag in (None, 200, 50, 10):
        run_field("slide", epsilon, max_lag=max_lag)


if __name__ == "__main__":
    main()
